"""Tests for the detect tier (repro.detect).

Covers the tiered baseline calendar (tier cascade 28 -> 14 -> recency ->
abstain, weekday/weekend classes, calendar-mode flips, axis gaps), the
cell scorers and their config, suppression plans (policy, JSON round
trips, apply/rollback), the stateful DetectSession riding the explain
session's O(delta) append, the ``repro detect`` CLI verb, and the
``/detect`` endpoint of the serving tier.  Byte-identity of the
incremental baseline advance lives in test_properties.py.
"""

from __future__ import annotations

import datetime
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.session import ExplainSession
from repro.cube.datacube import ExplanationCube
from repro.datasets.base import Dataset
from repro.detect import (
    AnomalyReport,
    CellScore,
    DetectConfig,
    DetectSession,
    SlotCalendar,
    SuppressionPlan,
    TieredBaselines,
    apply_plan,
    build_plan,
    recommend_action,
    score_columns,
    severity_of,
)
from repro.exceptions import ConfigError, QueryError
from repro.relation.csvio import write_csv
from repro.serve.http import ServeApp
from repro.serve.registry import DatasetSpec, SessionRegistry
from tests.conftest import build_relation

START = datetime.date(2024, 1, 1)  # a Monday


def iso(day_index: int) -> str:
    return (START + datetime.timedelta(days=day_index)).isoformat()


def daily_relation(n_days: int = 56, spikes: dict | None = None):
    """Two categories with a flat weekly pattern and optional spikes.

    Every weekday repeats its value exactly, so all baseline deviations
    are zero except at the seeded ``{(day_index, cat): value}`` spikes.
    """
    spikes = spikes or {}
    rows = {"day": [], "cat": [], "m": []}
    for i in range(n_days):
        for cat, base in (("a", 100.0), ("b", 40.0)):
            rows["day"].append(iso(i))
            rows["cat"].append(cat)
            rows["m"].append(spikes.get((i, cat), base + (i % 7)))
    return build_relation(rows, dimensions=["cat"], measures=["m"], time="day")


def daily_cube(n_days: int = 56, spikes: dict | None = None) -> ExplanationCube:
    return ExplanationCube(daily_relation(n_days, spikes), ["cat"], "m")


# ----------------------------------------------------------------------
# SlotCalendar: modes, weekdays, and the tier cascade
# ----------------------------------------------------------------------
def test_calendar_date_mode_weekdays():
    calendar = SlotCalendar([iso(i) for i in range(14)])
    assert calendar.mode == "date"
    # 2024-01-01 is a Monday; weekday() convention Monday=0 .. Sunday=6.
    assert calendar.weekdays[:7] == [0, 1, 2, 3, 4, 5, 6]
    assert len(calendar) == 14


def test_calendar_positional_fallback_from_the_start():
    calendar = SlotCalendar([f"t{i:03d}" for i in range(10)])
    assert calendar.mode == "positional"
    assert calendar.ordinals == list(range(10))
    assert calendar.weekdays == [i % 7 for i in range(10)]


def test_calendar_extend_reports_mode_flip_only_on_remap():
    calendar = SlotCalendar([iso(0), iso(1)])
    assert calendar.extend([iso(0), iso(1), iso(2)]) is False  # still dates
    assert calendar.extend([iso(0), iso(1), iso(2), "not-a-date"]) is True
    assert calendar.mode == "positional"
    # Further positional growth is not a flip.
    labels = [iso(0), iso(1), iso(2), "not-a-date", "x"]
    assert calendar.extend(labels) is False


def test_calendar_duplicate_date_flips_to_positional():
    calendar = SlotCalendar([iso(0), iso(1)])
    assert calendar.extend([iso(0), iso(1), iso(1)]) is True
    assert calendar.mode == "positional"


def test_tier_cascade_28_to_14_to_recency_to_abstain():
    config = DetectConfig()
    # 56 days: the last column has all four same-weekday samples.
    calendar = SlotCalendar([iso(i) for i in range(56)])
    window, samples = calendar.samples_for(55, config)
    assert window == 28
    assert samples == [55 - 28, 55 - 21, 55 - 14, 55 - 7]
    # 20 days: only two same-weekday samples -> the 14-day tier serves.
    calendar = SlotCalendar([iso(i) for i in range(20)])
    window, samples = calendar.samples_for(19, config)
    assert window == 14
    assert samples == [19 - 14, 19 - 7]
    # 10 days: one same-weekday sample -> recency tier, same day class.
    calendar = SlotCalendar([iso(i) for i in range(10)])
    window, samples = calendar.samples_for(9, config)
    assert window == config.recency_window
    assert samples == [7, 8]  # Mon/Tue; the weekend days are skipped
    # Day 1 has a single prior weekday -> below the recency minimum.
    window, samples = calendar.samples_for(1, config)
    assert (window, samples) == (0, [])


def test_weekend_cells_never_sample_weekdays():
    config = DetectConfig()
    calendar = SlotCalendar([iso(i) for i in range(13)])
    # 2024-01-13 (position 12) is a Saturday; its one same-weekday sample
    # (Jan 6) is under the 14-day quota of 2, and the recency window
    # holds only weekdays -> the cell abstains rather than mixing classes.
    window, samples = calendar.samples_for(12, config)
    assert (window, samples) == (0, [])
    for position in range(13):
        window, samples = calendar.samples_for(position, config)
        weekend = calendar.weekdays[position] >= 5
        assert all((calendar.weekdays[s] >= 5) == weekend for s in samples)


def test_axis_gap_shrinks_samples_instead_of_shifting():
    # Drop one mid-axis Monday: the last Monday's 28-day tier loses that
    # sample (3 left >= quota) instead of silently sampling a Tuesday.
    days = [i for i in range(56) if i != 35]  # 2024-02-05, a Monday
    calendar = SlotCalendar([iso(i) for i in days])
    position = days.index(49)  # 2024-02-19, a Monday
    window, samples = calendar.samples_for(position, DetectConfig())
    assert window == 28
    assert [days[s] for s in samples] == [21, 28, 42]


# ----------------------------------------------------------------------
# DetectConfig validation and overrides
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "bad",
    [
        dict(dow_windows=(13,), dow_min_samples=(1,)),  # not a multiple of 7
        dict(dow_windows=(7, 14), dow_min_samples=(1, 1)),  # not widest-first
        dict(dow_windows=(14,), dow_min_samples=(1, 1)),  # unpaired
        dict(dow_min_samples=(0, 1)),  # minimum < 1
        dict(recency_window=0),
        dict(z_warn=5.0),  # above the default z_alert
        dict(direction="sideways"),
        dict(std_floor=0.0),
        dict(min_deviation=-1.0),
        dict(max_cells=0),
        dict(link_top=-1),
    ],
)
def test_config_validation_rejects(bad):
    with pytest.raises(ConfigError):
        DetectConfig(**bad)


def test_config_override_lifts_higher_tiers():
    config = DetectConfig().override(z_warn=10.0)
    assert (config.z_warn, config.z_alert, config.z_critical) == (10.0, 10.0, 10.0)
    config = DetectConfig().override(z_alert=8.0)
    assert (config.z_warn, config.z_alert, config.z_critical) == (2.5, 8.0, 8.0)
    # Explicit values always win over the lift.
    config = DetectConfig().override(z_warn=7.0, z_critical=12.0)
    assert (config.z_warn, config.z_alert, config.z_critical) == (7.0, 7.0, 12.0)
    with pytest.raises(ConfigError):
        DetectConfig().override(z_warn=7.0, z_alert=3.0)


def test_severity_thresholds():
    config = DetectConfig()
    assert severity_of(2.0, config) is None
    assert severity_of(-2.6, config) == "warn"
    assert severity_of(4.0, config) == "alert"
    assert severity_of(-9.0, config) == "critical"


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------
def test_seeded_spike_is_scored_critical():
    cube = daily_cube(spikes={(49, "a"): 500.0})
    baselines = TieredBaselines(cube)
    report = score_columns(cube, baselines, DetectConfig())
    assert report.columns_scored > 0 and report.columns_abstained > 0
    assert len(report.cells) == 1
    cell = report.cells[0]
    assert cell.explanation == "cat=a"
    assert cell.label == iso(49)
    assert cell.severity == "critical"
    assert cell.direction == "spike"
    assert cell.value == 500.0
    assert cell.ratio == pytest.approx(500.0 / cell.baseline_mean)
    assert report.counts() == {"warn": 0, "alert": 0, "critical": 1}


def test_direction_and_floor_masks():
    cube = daily_cube(spikes={(49, "a"): 500.0, (50, "b"): 1.0})
    baselines = TieredBaselines(cube)
    spikes_only = score_columns(
        cube, baselines, DetectConfig(direction="spike")
    )
    assert [c.direction for c in spikes_only.cells] == ["spike"]
    drops_only = score_columns(cube, baselines, DetectConfig(direction="drop"))
    assert [c.direction for c in drops_only.cells] == ["drop"]
    assert drops_only.cells[0].explanation == "cat=b"
    # A deviation floor above both |value - mean| gaps silences the scan.
    silent = score_columns(cube, baselines, DetectConfig(min_deviation=1000.0))
    assert silent.cells == ()
    # A volume floor above both cells' magnitudes does too.
    silent = score_columns(cube, baselines, DetectConfig(min_volume=1000.0))
    assert silent.cells == ()


def test_max_cells_truncates_most_severe_first():
    cube = daily_cube(spikes={(49, "a"): 500.0, (50, "b"): 400.0})
    baselines = TieredBaselines(cube)
    report = score_columns(cube, baselines, DetectConfig(max_cells=1))
    assert len(report.cells) == 1
    assert report.truncated == 1
    full = score_columns(cube, baselines, DetectConfig())
    assert report.cells[0] == max(full.cells, key=lambda c: abs(c.z))


def test_abstaining_columns_are_never_scored():
    cube = daily_cube(spikes={(1, "a"): 9999.0})  # day 1 always abstains
    baselines = TieredBaselines(cube)
    report = score_columns(cube, baselines, DetectConfig())
    assert all(cell.position != 1 for cell in report.cells)


def test_cellscore_json_round_trip():
    cube = daily_cube(spikes={(49, "a"): 500.0})
    report = score_columns(cube, TieredBaselines(cube), DetectConfig())
    cell = report.cells[0]
    assert CellScore.from_json(json.loads(json.dumps(cell.to_json()))) == cell
    payload = report.to_json()
    assert payload["counts"]["critical"] == 1
    assert payload["anomalies"][0]["explanation"] == "cat=a"


# ----------------------------------------------------------------------
# Baseline state: advance after appends
# ----------------------------------------------------------------------
def test_advance_recomputes_only_the_tail():
    relation = daily_relation(56)
    base = relation.take(np.arange(relation.n_rows - 2))
    delta = relation.take(np.arange(relation.n_rows - 2, relation.n_rows))
    cube = ExplanationCube(base, ["cat"], "m")
    baselines = TieredBaselines(cube)
    assert baselines.n_times == 55
    recomputed = baselines.advance(cube.append(delta))
    assert list(recomputed) == [55]
    assert baselines.n_times == 56
    assert baselines.tier[55] == 28


def test_advance_none_and_noop():
    cube = daily_cube(28)
    baselines = TieredBaselines(cube)
    assert baselines.advance(None).size == baselines.n_times  # full rebuild
    empty = daily_relation(28).take(np.arange(0))
    assert baselines.advance(cube.append(empty)).size == 0


def test_advance_rebuilds_on_calendar_flip():
    relation = daily_relation(28)
    cube = ExplanationCube(relation, ["cat"], "m")
    baselines = TieredBaselines(cube)
    assert baselines.calendar_mode == "date"
    delta = build_relation(
        {"day": ["not-a-date"], "cat": ["a"], "m": [1.0]},
        dimensions=["cat"],
        measures=["m"],
        time="day",
    )
    recomputed = baselines.advance(cube.append(delta))
    assert baselines.calendar_mode == "positional"
    assert recomputed.size == baselines.n_times  # every slot remapped


# ----------------------------------------------------------------------
# Suppression plans
# ----------------------------------------------------------------------
def _cell(severity: str, value: float = 500.0, **overrides) -> CellScore:
    fields = dict(
        candidate=0,
        explanation="cat=a",
        items=(("cat", "a"),),
        position=49,
        label=iso(49),
        value=value,
        baseline_mean=103.0,
        baseline_std=0.0,
        window_days=28,
        samples=4,
        z={"critical": 80.0, "alert": 4.0, "warn": 2.6}[severity],
        ratio=value / 103.0,
        severity=severity,
        direction="spike",
    )
    fields.update(overrides)
    return CellScore(**fields)


def test_recommend_action_policy():
    assert recommend_action(_cell("critical"), "sum")[0] == "suppress"
    assert recommend_action(_cell("alert"), "sum")[0] == "correct"
    assert recommend_action(_cell("warn"), "sum")[0] == "ignore"
    # Corrections degrade honestly where a rescale cannot express them.
    action, reason = recommend_action(_cell("alert"), "count")
    assert action == "suppress" and "cannot be rescaled" in reason
    action, reason = recommend_action(_cell("alert", value=0.0), "sum")
    assert action == "suppress" and "zero actual" in reason


def test_plan_json_round_trip(tmp_path):
    plan = build_plan(
        [_cell("critical"), _cell("alert"), _cell("warn")],
        measure="m",
        time_attr="day",
        aggregate="sum",
        explain_by=("cat",),
        source="unit",
        links={49: ("cat=a", "cat=b")},
    )
    assert plan.counts() == {"suppress": 1, "correct": 1, "ignore": 1}
    assert plan.entries[0].linked_explanations == ("cat=a", "cat=b")
    assert SuppressionPlan.from_json(plan.to_json()) == plan
    path = tmp_path / "plan.json"
    plan.save(path)
    assert SuppressionPlan.load(path) == plan
    with pytest.raises(QueryError):
        SuppressionPlan.load(tmp_path / "missing.json")
    bad = plan.to_json()
    bad["entries"][0]["action"] = "obliterate"
    with pytest.raises(QueryError):
        SuppressionPlan.from_json(bad)


def test_apply_suppress_correct_ignore_and_rollback():
    relation = daily_relation(56, spikes={(49, "a"): 500.0, (50, "b"): 400.0})
    correct_cell = _cell(
        "alert", value=400.0, baseline_mean=44.0, items=(("cat", "b"),),
        explanation="cat=b", position=50, label=iso(50),
    )
    plan = build_plan(
        [_cell("critical"), correct_cell, _cell("warn", position=10, label=iso(10))],
        measure="m",
        time_attr="day",
        aggregate="sum",
        explain_by=("cat",),
    )
    applied = apply_plan(plan, relation)
    assert applied.suppressed_rows == 1
    assert applied.corrected_rows == 1
    assert applied.ignored_entries == 1
    assert applied.missed_entries == ()
    assert applied.corrected.n_rows == relation.n_rows - 1
    # The suppressed cell's rows are gone ...
    day = applied.corrected.column("day")
    cat = applied.corrected.column("cat")
    assert not np.any((day == iso(49)) & (cat == "a"))
    # ... and the corrected cell's SUM lands exactly on its baseline.
    mask = (day == iso(50)) & (cat == "b")
    assert applied.corrected.column("m")[mask].sum() == pytest.approx(44.0)
    # Rollback is the original binding, untouched.
    assert applied.rollback() is relation
    assert relation.n_rows == 112


def test_apply_reports_missed_and_bad_measure():
    relation = daily_relation(28)
    plan = build_plan(
        [_cell("critical", label="2030-01-01")],
        measure="m",
        time_attr="day",
        aggregate="sum",
        explain_by=("cat",),
    )
    applied = apply_plan(plan, relation)
    assert applied.missed_entries == ("cat=a @ 2030-01-01",)
    assert applied.corrected.n_rows == relation.n_rows
    bad = SuppressionPlan.from_json({**plan.to_json(), "measure": "nope"})
    with pytest.raises(QueryError):
        apply_plan(bad, relation)


def test_apply_round_trips_through_json(tmp_path):
    """A plan that went to disk and back applies identically."""
    relation = daily_relation(56, spikes={(49, "a"): 500.0})
    session = ExplainSession(relation, measure="m", explain_by=["cat"])
    detect = DetectSession(session)
    plan = detect.plan()
    path = tmp_path / "plan.json"
    plan.save(path)
    direct = apply_plan(plan, relation)
    reloaded = apply_plan(SuppressionPlan.load(path), relation)
    assert reloaded.suppressed_rows == direct.suppressed_rows
    np.testing.assert_array_equal(
        reloaded.corrected.column("m"), direct.corrected.column("m")
    )


# ----------------------------------------------------------------------
# DetectSession
# ----------------------------------------------------------------------
def test_session_scan_plan_and_links():
    relation = daily_relation(56, spikes={(49, "a"): 500.0})
    detect = DetectSession(ExplainSession(relation, measure="m", explain_by=["cat"]))
    report = detect.scan()
    assert [c.explanation for c in report.cells] == ["cat=a"]
    plan = detect.plan(report, source="unit")
    assert plan.source == "unit"
    assert plan.measure == "m" and plan.time_attr == "day"
    entry = plan.entries[0]
    assert entry.action == "suppress"
    # The anomaly is cross-linked to the window's top explanations.
    assert entry.linked_explanations
    assert all(link.startswith("cat=") for link in entry.linked_explanations)
    stats = detect.stats()
    assert stats["scans"] >= 1 and stats["anomalies"] >= 1
    assert stats["calendar_mode"] == "date"
    assert stats["columns"] == 56


def test_session_append_scores_only_touched_columns():
    relation = daily_relation(56, spikes={(55, "b"): 400.0})
    split = relation.n_rows - 4  # the last two days arrive as a delta
    base = relation.take(np.arange(split))
    delta = relation.take(np.arange(split, relation.n_rows))
    detect = DetectSession(ExplainSession(base, measure="m", explain_by=["cat"]))
    assert detect.scan().cells == ()
    update = detect.append(delta)
    assert update.n_rows == 4
    assert update.recomputed_columns == 2
    assert [c.explanation for c in update.report.cells] == ["cat=b"]
    assert update.report.cells[0].label == iso(55)
    # An incremental update must agree with a from-scratch full scan.
    fresh = DetectSession(ExplainSession(relation, measure="m", explain_by=["cat"]))
    assert fresh.scan().cells == detect.scan().cells


def test_session_empty_delta_is_noop():
    detect = DetectSession(
        ExplainSession(daily_relation(28), measure="m", explain_by=["cat"])
    )
    update = detect.append(daily_relation(28).take(np.arange(0)))
    assert update.is_noop
    assert update.recomputed_columns == 0
    assert update.report.cells == ()
    assert detect.stats()["appends"] == 1


def test_session_one_off_config_override():
    relation = daily_relation(56, spikes={(49, "a"): 140.0})  # a mild spike
    detect = DetectSession(
        ExplainSession(relation, measure="m", explain_by=["cat"]),
        config=DetectConfig(z_warn=2.5),
    )
    assert len(detect.scan().cells) == 1
    strict = detect.config.override(z_warn=1000.0)
    assert detect.scan(config=strict).cells == ()
    assert detect.config.z_warn == 2.5  # the session config is untouched


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture
def detect_csv(tmp_path):
    path = tmp_path / "daily.csv"
    write_csv(daily_relation(56, spikes={(49, "a"): 500.0}), path)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _detect_args(csv_path):
    return (
        "--csv", csv_path, "--time", "day", "--dimensions", "cat",
        "--measure", "m",
    )


def test_cli_detect_scan(capsys, detect_csv):
    code, out, _ = run_cli(capsys, "detect", "scan", *_detect_args(detect_csv))
    assert code == 0
    assert "baseline scan" in out
    assert "cat=a" in out and iso(49) in out
    assert "1 anomalous cell(s)" in out


def test_cli_detect_scan_json(capsys, detect_csv, tmp_path):
    report_path = tmp_path / "report.json"
    code, _, _ = run_cli(
        capsys, "detect", "scan", *_detect_args(detect_csv),
        "--json", str(report_path),
    )
    assert code == 0
    payload = json.loads(report_path.read_text())
    assert payload["counts"]["critical"] == 1


def test_cli_detect_plan_and_apply(capsys, detect_csv, tmp_path):
    plan_path = tmp_path / "plan.json"
    code, out, _ = run_cli(
        capsys, "detect", "plan", *_detect_args(detect_csv),
        "--out", str(plan_path),
    )
    assert code == 0
    assert "wrote suppression plan" in out
    plan = SuppressionPlan.load(plan_path)
    assert plan.counts()["suppress"] == 1

    corrected_path = tmp_path / "corrected.csv"
    code, out, _ = run_cli(
        capsys, "detect", "apply", *_detect_args(detect_csv),
        "--plan", str(plan_path),
        "--write-csv", str(corrected_path), "--explain",
    )
    assert code == 0
    assert "applied: 1 row(s) suppressed" in out
    assert "corrected relation, explained" in out
    assert corrected_path.exists()


def test_cli_detect_apply_requires_plan(capsys, detect_csv):
    code, _, err = run_cli(capsys, "detect", "apply", *_detect_args(detect_csv))
    assert code == 2
    assert "--plan" in err


def test_cli_detect_threshold_flags(capsys, detect_csv):
    code, out, _ = run_cli(
        capsys, "detect", "scan", *_detect_args(detect_csv),
        "--z-warn", "10000", "--direction", "drop",
    )
    assert code == 0
    assert "0 anomalous cell(s)" in out


# ----------------------------------------------------------------------
# Serving tier
# ----------------------------------------------------------------------
def _detect_registry() -> SessionRegistry:
    dataset = Dataset(
        name="daily",
        relation=daily_relation(56, spikes={(49, "a"): 500.0}),
        measure="m",
        explain_by=("cat",),
        aggregate="sum",
    )
    return SessionRegistry(specs=[DatasetSpec.from_dataset(dataset)])


def test_registry_detect_session_is_cached_per_session():
    registry = _detect_registry()
    first = registry.detect_session("daily")
    assert registry.detect_session("daily") is first
    registry.evict("daily")
    rebuilt = registry.detect_session("daily")
    assert rebuilt is not first
    assert rebuilt.session is registry.session("daily")
    stats = registry.detect_stats()
    assert stats["sessions"] == 1


def test_http_detect_endpoint_and_stats():
    app = ServeApp(_detect_registry(), port=0).start()
    try:
        payload, status = app.dispatch(
            "/detect", {"dataset": "daily", "plan": "1", "top": "5"}
        )
        assert status == 200
        assert payload["report"]["counts"]["critical"] == 1
        anomaly = payload["report"]["anomalies"][0]
        assert anomaly["explanation"] == "cat=a" and anomaly["label"] == iso(49)
        entry = payload["plan"]["entries"][0]
        assert entry["action"] == "suppress"
        assert entry["linked_explanations"]
        # Threshold overrides flow through the query string.
        payload, _ = app.dispatch(
            "/detect", {"dataset": "daily", "z_warn": "100000"}
        )
        assert payload["report"]["anomalies"] == []
        assert "plan" not in payload
        stats, _ = app.dispatch("/stats", {})
        assert stats["registry"]["detect"]["scans"] == 2
        assert stats["registry"]["detect"]["anomalies"] == 1
        with pytest.raises(QueryError):
            app.dispatch("/detect", {"dataset": "daily", "bogus": "1"})
        payload, status = app.dispatch("/detect", {"dataset": "nope"})
        assert status == 404
    finally:
        app.shutdown()
