"""Unit tests for the NDCG-based distance (reference implementation)."""

import math

import numpy as np
import pytest

from repro.ca.cascade import CascadingAnalysts, DrillDownTree, TopMResult
from repro.cube.datacube import ExplanationCube
from repro.diff.scorer import SegmentScorer
from repro.exceptions import SegmentationError
from repro.segmentation.distance import (
    VARIANTS,
    combine_ndcg,
    dcg_cross,
    dcg_weights,
    explanation_distance,
    ideal_dcg,
    ndcg,
    pad_results,
)
from tests.conftest import regime_relation


@pytest.fixture
def scorer():
    return SegmentScorer(ExplanationCube(regime_relation(), ["cat"], "sales"))


def solve(scorer, start, stop, m=3) -> TopMResult:
    solver = CascadingAnalysts(DrillDownTree(scorer.cube.explanations), m=m)
    gammas, taus = scorer.gamma_tau(start, stop)
    result = solver.solve(gammas)
    return result.with_context(
        taus=[int(taus[i]) for i in result.indices], source_segment=(start, stop)
    )


def test_dcg_weights():
    weights = dcg_weights(3)
    assert weights[0] == pytest.approx(1.0)
    assert weights[1] == pytest.approx(1.0 / math.log2(3))
    assert weights[2] == pytest.approx(0.5)


def test_ideal_dcg_matches_manual(scorer):
    result = solve(scorer, 0, 11)
    expected = sum(g / math.log2(r + 2) for r, g in enumerate(result.gammas))
    assert ideal_dcg(result) == pytest.approx(expected)


def test_table2_worked_example(scorer):
    """The Table 2 walk-through: rectified relevance zeroes disagreeing tau.

    We build a source result manually: ranks 1 and 2 agree in effect with
    the target segment; rank 3 has the opposite effect and contributes 0.
    """
    cube = scorer.cube
    # Target [12, 23]: b rises (tau +), a flat (0), c flat (0).
    target = (12, 23)
    gammas, _ = scorer.gamma_tau(*target)
    index_a = 0  # cat=a
    index_b = 1  # cat=b
    source = TopMResult(
        indices=(index_b, index_a),
        gammas=(40.0, 30.0),
        best=(0.0, 40.0, 70.0),
        taus=(1, -1),  # pretend a *decreased* on the source segment
        source_segment=(0, 11),
    )
    got = dcg_cross(scorer, target, source)
    # Rank 1 (cat=b): tau on target +1 == +1 -> contributes gamma_b / log2(2).
    # Rank 2 (cat=a): tau on target 0 != -1 -> rectified to zero.
    assert got == pytest.approx(float(gammas[index_b]) / 1.0)


def test_dcg_cross_requires_context(scorer):
    bare = TopMResult(indices=(0,), gammas=(1.0,), best=(0.0, 1.0))
    with pytest.raises(SegmentationError):
        dcg_cross(scorer, (0, 5), bare)


def test_ndcg_self_is_one(scorer):
    result = solve(scorer, 0, 11)
    assert ndcg(scorer, (0, 11), result, result) == pytest.approx(1.0)


def test_ndcg_range(scorer):
    first = solve(scorer, 0, 11)
    second = solve(scorer, 12, 23)
    value = ndcg(scorer, (0, 11), first, second)
    assert 0.0 <= value <= 1.0


def test_ndcg_flat_target_defined_as_one(scorer):
    # Category c is flat everywhere; scoring a segment where the overall
    # change only comes from flat candidates yields ideal DCG 0.
    empty = TopMResult(indices=(), gammas=(), best=(0.0, 0.0, 0.0, 0.0), taus=(), source_segment=(0, 1))
    other = solve(scorer, 12, 23)
    assert ndcg(scorer, (0, 1), empty, other) == 1.0


def test_distance_symmetric_for_tse(scorer):
    first = solve(scorer, 0, 11)
    second = solve(scorer, 12, 23)
    d_ij = explanation_distance(scorer, (0, 11), (12, 23), first, second, "tse")
    d_ji = explanation_distance(scorer, (12, 23), (0, 11), second, first, "tse")
    assert d_ij == pytest.approx(d_ji)
    assert 0.0 <= d_ij <= 1.0


def test_distance_zero_for_same_segment(scorer):
    result = solve(scorer, 0, 11)
    assert explanation_distance(scorer, (0, 11), (0, 11), result, result, "tse") == pytest.approx(0.0)


def test_regime_change_increases_distance(scorer):
    """Segments across the regime switch are farther than within a regime."""
    left_a = solve(scorer, 0, 5)
    left_b = solve(scorer, 6, 11)
    right = solve(scorer, 12, 23)
    within = explanation_distance(scorer, (0, 5), (6, 11), left_a, left_b, "tse")
    across = explanation_distance(scorer, (0, 5), (12, 23), left_a, right, "tse")
    assert across > within


@pytest.mark.parametrize("variant", VARIANTS)
def test_combine_ndcg_bounds(variant):
    for forward in (0.0, 0.3, 1.0):
        for backward in (0.0, 0.7, 1.0):
            value = combine_ndcg(forward, backward, variant)
            assert 0.0 <= value <= 1.0
    assert combine_ndcg(1.0, 1.0, variant) == pytest.approx(0.0)


def test_combine_unknown_variant():
    with pytest.raises(SegmentationError):
        combine_ndcg(0.5, 0.5, "bogus")


def test_combine_one_sided():
    assert combine_ndcg(0.25, 0.75, "dist1") == pytest.approx(0.75)
    assert combine_ndcg(0.25, 0.75, "dist2") == pytest.approx(0.25)
    assert combine_ndcg(0.6, 0.8, "Sdist1") == pytest.approx(1 - 0.36)
    assert combine_ndcg(0.6, 0.8, "Sdist2") == pytest.approx(1 - 0.64)
    assert combine_ndcg(0.6, 0.8, "Stse") == pytest.approx(
        1 - math.sqrt((0.36 + 0.64) / 2)
    )


def test_pad_results_shapes(scorer):
    results = [solve(scorer, x, x + 1) for x in range(4)]
    indices, gammas, taus, valid = pad_results(results, 3)
    assert indices.shape == (4, 3)
    assert valid.dtype == bool
    for row, result in enumerate(results):
        assert valid[row].sum() == len(result.indices)
