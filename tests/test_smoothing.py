"""Tests for moving-average smoothing of series and cubes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.smoothing import moving_average, smooth_cube, smooth_series
from repro.cube.datacube import ExplanationCube
from repro.exceptions import QueryError
from repro.relation.timeseries import TimeSeries
from tests.conftest import regime_relation


def test_window_one_is_identity():
    values = np.asarray([3.0, 1.0, 4.0])
    assert moving_average(values, 1).tolist() == values.tolist()


def test_centered_average():
    values = np.asarray([0.0, 3.0, 6.0, 9.0])
    out = moving_average(values, 3)
    assert out[1] == pytest.approx(3.0)
    assert out[2] == pytest.approx(6.0)
    # Edges shrink their window instead of padding.
    assert out[0] == pytest.approx(1.5)
    assert out[-1] == pytest.approx(7.5)


def test_constant_series_unchanged():
    values = np.full(10, 4.2)
    assert np.allclose(moving_average(values, 5), values)


@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=40),
    st.integers(1, 9),
)
def test_smoothing_stays_in_range(values, window):
    values = np.asarray(values)
    out = moving_average(values, window)
    assert out.shape == values.shape
    assert out.min() >= values.min() - 1e-9
    assert out.max() <= values.max() + 1e-9


def test_validation():
    with pytest.raises(QueryError):
        moving_average(np.zeros((2, 2)), 3)
    with pytest.raises(QueryError):
        moving_average(np.zeros(5), 0)


def test_smooth_series_keeps_labels():
    series = TimeSeries([1.0, 5.0, 1.0], ["a", "b", "c"])
    smoothed = smooth_series(series, 3)
    assert smoothed.labels == series.labels
    assert smoothed.values[1] == pytest.approx(7.0 / 3)


def test_smooth_cube_preserves_decomposition():
    cube = ExplanationCube(regime_relation(), ["cat"], "sales")
    smoothed = smooth_cube(cube, 5)
    assert smoothed.n_explanations == cube.n_explanations
    # Smoothing is linear: included + excluded still equals overall.
    for index in range(smoothed.n_explanations):
        assert np.allclose(
            smoothed.included_values[index] + smoothed.excluded_values[index],
            smoothed.overall_values,
        )


def test_smooth_cube_window_one_is_same_object():
    cube = ExplanationCube(regime_relation(), ["cat"], "sales")
    assert smooth_cube(cube, 1) is cube
