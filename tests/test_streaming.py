"""Tests for real-time incremental explanation (section 8)."""

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.streaming import StreamingExplainer
from repro.relation.schema import Schema
from repro.relation.table import Relation
from tests.conftest import regime_relation


def rows_for(t_values, cat_fn):
    rows = {"t": [], "cat": [], "sales": []}
    for t in t_values:
        for cat in ("a", "b", "c"):
            rows["t"].append(f"t{t:03d}")
            rows["cat"].append(cat)
            rows["sales"].append(cat_fn(t, cat))
    schema = Schema.build(dimensions=["cat"], measures=["sales"], time="t")
    return Relation(rows, schema)


@pytest.fixture
def explainer():
    return StreamingExplainer(
        regime_relation(),
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    )


def test_refresh_runs_full_pipeline(explainer):
    result = explainer.refresh()
    assert result.cuts == (12,)
    assert explainer.result is result


def test_update_before_refresh_triggers_full_run(explainer):
    new = rows_for(range(24, 27), lambda t, cat: 70.0 if cat == "b" else 10.0)
    result = explainer.update(new)
    assert result is explainer.result
    assert len(result.series) == 27


def test_update_extends_series_and_keeps_old_cut(explainer):
    explainer.refresh()
    # New data continues the 'b' regime: the old cut must survive.
    new = rows_for(
        range(24, 32),
        lambda t, cat: 10.0 + 5.0 * (t - 12) if cat == "b" else (58.0 if cat == "a" else 7.0),
    )
    result = explainer.update(new)
    assert len(result.series) == 32
    assert 12 in result.boundaries


def test_update_detects_new_regime(explainer):
    explainer.refresh()
    # Category c suddenly explodes: a new cut appears in the new region.
    new = rows_for(
        range(24, 36),
        lambda t, cat: 7.0 + 30.0 * (t - 23) if cat == "c" else (58.0 if cat == "a" else 70.0),
    )
    config_k = None  # let the elbow pick
    explainer._config = explainer._config.updated(k=config_k)
    result = explainer.update(new)
    assert any(boundary >= 23 for boundary in result.cuts)
    top_last = result.segments[-1].explanations[0].explanation
    assert repr(top_last) == "cat=c"


def test_incremental_matches_full_rerun_on_stable_data(explainer):
    explainer.refresh()
    new = rows_for(
        range(24, 30),
        lambda t, cat: 10.0 + 5.0 * (t - 12) if cat == "b" else (58.0 if cat == "a" else 7.0),
    )
    incremental = explainer.update(new)
    full = StreamingExplainer(
        explainer.relation,
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    ).refresh()
    # The incremental cut must be (nearly) the full rerun's cut.
    assert abs(incremental.cuts[0] - full.cuts[0]) <= 1
