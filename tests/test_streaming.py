"""Tests for real-time incremental explanation (section 8)."""

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.streaming import StreamingExplainer
from repro.exceptions import QueryError
from repro.relation.schema import Schema
from repro.relation.table import Relation
from tests.conftest import regime_relation


def rows_for(t_values, cat_fn):
    rows = {"t": [], "cat": [], "sales": []}
    for t in t_values:
        for cat in ("a", "b", "c"):
            rows["t"].append(f"t{t:03d}")
            rows["cat"].append(cat)
            rows["sales"].append(cat_fn(t, cat))
    schema = Schema.build(dimensions=["cat"], measures=["sales"], time="t")
    return Relation(rows, schema)


@pytest.fixture
def explainer():
    return StreamingExplainer(
        regime_relation(),
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    )


def test_refresh_runs_full_pipeline(explainer):
    result = explainer.refresh()
    assert result.cuts == (12,)
    assert explainer.result is result


def test_update_before_refresh_triggers_full_run(explainer):
    new = rows_for(range(24, 27), lambda t, cat: 70.0 if cat == "b" else 10.0)
    result = explainer.update(new)
    assert result is explainer.result
    assert len(result.series) == 27


def test_update_extends_series_and_keeps_old_cut(explainer):
    explainer.refresh()
    # New data continues the 'b' regime: the old cut must survive.
    new = rows_for(
        range(24, 32),
        lambda t, cat: 10.0 + 5.0 * (t - 12) if cat == "b" else (58.0 if cat == "a" else 7.0),
    )
    result = explainer.update(new)
    assert len(result.series) == 32
    assert 12 in result.boundaries


def test_update_detects_new_regime(explainer):
    explainer.refresh()
    # Category c suddenly explodes: a new cut appears in the new region.
    new = rows_for(
        range(24, 36),
        lambda t, cat: 7.0 + 30.0 * (t - 23) if cat == "c" else (58.0 if cat == "a" else 70.0),
    )
    config_k = None  # let the elbow pick
    explainer._config = explainer._config.updated(k=config_k)
    result = explainer.update(new)
    assert any(boundary >= 23 for boundary in result.cuts)
    top_last = result.segments[-1].explanations[0].explanation
    assert repr(top_last) == "cat=c"


def test_out_of_order_timestamps_within_delta(explainer):
    """Rows inside a delta may arrive in any order; result matches sorted."""
    explainer.refresh()
    ts = [27, 24, 26, 25, 24]  # shuffled, with a duplicate day
    delta = rows_for(ts, lambda t, cat: 70.0 if cat == "b" else 10.0)
    shuffled = explainer.update(delta)

    ordered = StreamingExplainer(
        regime_relation(),
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    )
    ordered.refresh()
    ordered_delta = rows_for(sorted(ts), lambda t, cat: 70.0 if cat == "b" else 10.0)
    result = ordered.update(ordered_delta)
    assert len(shuffled.series) == len(result.series) == 28
    # Same rows -> same aggregated series and segmentation.
    np.testing.assert_array_equal(shuffled.series.values, result.series.values)
    assert shuffled.boundaries == result.boundaries


def test_delta_predating_the_stream_raises(explainer):
    """A delta whose (new) timestamps all pre-date the cube is rejected."""
    explainer.refresh()
    before = explainer.relation
    stale = rows_for([-3, -2], lambda t, cat: 5.0)  # t-03 sorts before t000
    with pytest.raises(QueryError, match="precedes"):
        explainer.update(stale)
    # The rejected delta must not have corrupted the stream: relation and
    # results are unchanged and further updates work.
    assert explainer.relation is before
    good = rows_for([24], lambda t, cat: 10.0)
    assert len(explainer.update(good).series) == 25


def test_update_can_change_the_elbow_selected_k():
    """An update that starts a third regime moves the elbow's K."""
    explainer = StreamingExplainer(
        regime_relation(),
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False),  # K chosen by the elbow
    )
    first = explainer.refresh()
    assert first.k_was_auto
    # Category c explodes: a regime the old 2-segment split cannot absorb.
    new = rows_for(
        range(24, 40),
        lambda t, cat: 7.0 + 40.0 * (t - 23) if cat == "c" else (58.0 if cat == "a" else 70.0),
    )
    updated = explainer.update(new)
    assert updated.k_was_auto
    assert updated.k > first.k
    assert repr(updated.segments[-1].explanations[0].explanation) == "cat=c"


def test_incremental_matches_full_rerun_on_stable_data(explainer):
    explainer.refresh()
    new = rows_for(
        range(24, 30),
        lambda t, cat: 10.0 + 5.0 * (t - 12) if cat == "b" else (58.0 if cat == "a" else 7.0),
    )
    incremental = explainer.update(new)
    full = StreamingExplainer(
        explainer.relation,
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    ).refresh()
    # The incremental cut must be (nearly) the full rerun's cut.
    assert abs(incremental.cuts[0] - full.cuts[0]) <= 1


def test_empty_delta_update_is_a_noop(explainer):
    """Regression: a poll tick with no new rows returns the cached result
    without re-running the pipeline, copying the relation, or touching
    the prepared session."""
    first = explainer.refresh()
    relation = explainer.relation
    session = explainer.session()
    empty = rows_for([], lambda t, cat: 0.0)
    assert explainer.update(empty) is first
    assert explainer.relation is relation
    assert explainer.session() is session
    # A later real update behaves exactly as if the tick never happened.
    new = rows_for(
        range(24, 28),
        lambda t, cat: 10.0 + 5.0 * (t - 12) if cat == "b" else 10.0,
    )
    after_tick = explainer.update(new)
    replay = StreamingExplainer(
        regime_relation(),
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    )
    replay.refresh()
    no_tick = replay.update(new)
    assert after_tick.cuts == no_tick.cuts
    assert list(after_tick.series.values) == list(no_tick.series.values)


def test_empty_delta_does_not_fork_the_chained_cache(tmp_path):
    """With a rollup cache, an empty tick must not advance the chained
    snapshot fingerprint: a replay that never saw the tick hits the same
    cache entries."""
    from repro.cube.cache import RollupCache

    new = rows_for(
        range(24, 28),
        lambda t, cat: 10.0 + 5.0 * (t - 12) if cat == "b" else 10.0,
    )

    def run(with_tick: bool, directory) -> int:
        cache = RollupCache(directory)
        explainer = StreamingExplainer(
            regime_relation(),
            measure="sales",
            explain_by=["cat"],
            config=ExplainConfig(use_filter=False, k=2, cache_dir=str(directory)),
        )
        explainer.refresh()
        if with_tick:
            explainer.update(rows_for([], lambda t, cat: 0.0))
        explainer.update(new)
        return len(cache.entries())

    ticked = run(True, tmp_path / "ticked")
    plain = run(False, tmp_path / "plain")
    assert ticked == plain
