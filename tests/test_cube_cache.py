"""Tests for the persistent rollup cache (repro.cube.cache)."""

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.pipeline import ExplainPipeline
from repro.cube.cache import CACHE_SUFFIX, RollupCache, cube_key, load_or_build
from repro.cube.datacube import ExplanationCube
from repro.exceptions import ConfigError
from repro.relation.schema import AttributeKind
from tests.conftest import regime_relation, two_attr_relation


@pytest.fixture
def cache(tmp_path):
    return RollupCache(tmp_path / "rollups")


def _cubes_equal(left: ExplanationCube, right: ExplanationCube) -> bool:
    return (
        left.explanations == right.explanations
        and left.labels == right.labels
        and left.explain_by == right.explain_by
        and left.aggregate.name == right.aggregate.name
        and left.measure == right.measure
        and np.array_equal(left.supports, right.supports)
        and np.array_equal(left.overall_values, right.overall_values)
        and np.array_equal(left.included_values, right.included_values)
        and np.array_equal(left.excluded_values, right.excluded_values)
    )


# ----------------------------------------------------------------------
# Relation fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_stable_across_instances():
    assert regime_relation().fingerprint() == regime_relation().fingerprint()


def test_fingerprint_changes_with_data():
    base = regime_relation()
    changed = regime_relation(n=24, switch=11)
    assert base.fingerprint() != changed.fingerprint()


def test_fingerprint_changes_with_extra_rows():
    base = regime_relation()
    grown = base.concat(base.head(1))
    assert base.fingerprint() != grown.fingerprint()


# ----------------------------------------------------------------------
# Load / store round trip
# ----------------------------------------------------------------------
def test_store_then_load_round_trips(cache):
    relation = two_attr_relation()
    cube = ExplanationCube(relation, ["a", "b"], "m")
    key = cube_key(relation, "m", ["a", "b"])
    path = cache.store(key, cube)
    assert path.exists()
    loaded = cache.load(key)
    assert loaded is not None
    assert _cubes_equal(cube, loaded)


def test_miss_on_empty_cache(cache):
    key = cube_key(regime_relation(), "sales", ["cat"])
    assert cache.load(key) is None


def test_miss_after_relation_change(cache):
    relation = regime_relation()
    cube = ExplanationCube(relation, ["cat"], "sales")
    cache.store(cube_key(relation, "sales", ["cat"]), cube)
    changed = regime_relation(n=24, switch=10)
    assert cache.load(cube_key(changed, "sales", ["cat"])) is None


def test_miss_on_different_parameters(cache):
    relation = two_attr_relation()
    cube = ExplanationCube(relation, ["a", "b"], "m")
    cache.store(cube_key(relation, "m", ["a", "b"]), cube)
    assert cache.load(cube_key(relation, "m", ["a"])) is None
    assert cache.load(cube_key(relation, "m", ["a", "b"], max_order=1)) is None
    assert cache.load(cube_key(relation, "m", ["a", "b"], aggregate="avg")) is None


def test_explain_by_order_does_not_split_cache(cache):
    relation = two_attr_relation()
    cube = ExplanationCube(relation, ["a", "b"], "m")
    cache.store(cube_key(relation, "m", ["a", "b"]), cube)
    assert cache.load(cube_key(relation, "m", ["b", "a"])) is not None


def test_corrupted_entry_is_a_miss_and_rebuilds(cache):
    relation = regime_relation()
    key = cube_key(relation, "sales", ["cat"])
    cube, hit = load_or_build(cache, relation, ["cat"], "sales")
    assert not hit
    path = cache.path_for(key)
    path.write_bytes(b"this is not a pickle")
    assert cache.load(key) is None
    rebuilt, hit = load_or_build(cache, relation, ["cat"], "sales")
    assert not hit
    assert _cubes_equal(cube, rebuilt)
    # The rebuild overwrote the poisoned entry, so the next call hits.
    _, hit = load_or_build(cache, relation, ["cat"], "sales")
    assert hit


def test_entries_and_clear(cache):
    relation = regime_relation()
    cube = ExplanationCube(relation, ["cat"], "sales")
    cache.store(cube_key(relation, "sales", ["cat"]), cube)
    (cache.directory / f"junk{CACHE_SUFFIX}").write_bytes(b"garbage")
    entries = cache.entries()
    assert len(entries) == 2
    valid = [entry for entry in entries if entry.valid]
    corrupt = [entry for entry in entries if not entry.valid]
    assert len(valid) == 1 and len(corrupt) == 1
    assert valid[0].n_explanations == cube.n_explanations
    assert valid[0].n_times == cube.n_times
    assert "CORRUPT" in corrupt[0].row()
    assert cache.clear() == 2
    assert cache.entries() == []


# ----------------------------------------------------------------------
# Pipeline / facade integration
# ----------------------------------------------------------------------
def test_pipeline_cache_hit_second_run(tmp_path):
    relation = regime_relation()
    config = ExplainConfig(cache_dir=str(tmp_path))
    first = ExplainPipeline(relation, "sales", ("cat",), config=config)
    first.prepare()
    assert first.cache_hit is False
    second = ExplainPipeline(relation, "sales", ("cat",), config=config)
    second.prepare()
    assert second.cache_hit is True


def test_pipeline_without_cache_reports_none():
    pipeline = ExplainPipeline(regime_relation(), "sales", ("cat",))
    pipeline.prepare()
    assert pipeline.cache_hit is None


def test_cached_and_fresh_results_identical(tmp_path):
    relation = two_attr_relation()
    fresh = TSExplain(relation, "m", ["a", "b"], k=2).explain()
    cold = TSExplain(relation, "m", ["a", "b"], k=2, cache_dir=str(tmp_path)).explain()
    warm = TSExplain(relation, "m", ["a", "b"], k=2, cache_dir=str(tmp_path)).explain()
    for result in (cold, warm):
        assert result.boundaries == fresh.boundaries
        for ours, theirs in zip(result.segments, fresh.segments):
            assert ours.explanations == theirs.explanations
            assert ours.variance == theirs.variance


def test_cached_cube_serves_other_configs(tmp_path):
    """Smoothing/filter/metric are outside the key: one entry, many configs."""
    relation = regime_relation()
    base = ExplainConfig(cache_dir=str(tmp_path))
    ExplainPipeline(relation, "sales", ("cat",), config=base).prepare()
    smoothed = ExplainPipeline(
        relation,
        "sales",
        ("cat",),
        config=base.updated(smoothing_window=3, use_filter=False),
    )
    smoothed.prepare()
    assert smoothed.cache_hit is True


def test_config_rejects_blank_cache_dir():
    with pytest.raises(ConfigError):
        ExplainConfig(cache_dir="   ")


def test_measure_rename_invalidates():
    """Same cell bytes under a renamed measure must not share an entry."""
    relation = regime_relation()
    renamed = relation.project(["t", "cat", "sales"])
    assert relation.fingerprint() == renamed.fingerprint()
    other = (
        relation.project(["t", "cat"])
        .with_column("volume", relation.column("sales"), AttributeKind.MEASURE)
    )
    assert relation.fingerprint() != other.fingerprint()


def test_cache_dir_tilde_is_expanded(tmp_path, monkeypatch):
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = RollupCache("~/rollups")
    assert cache.directory == tmp_path / "rollups"
    # Read-only operations neither require nor create the directory...
    assert cache.entries() == [] and cache.clear() == 0
    assert not cache.directory.exists()
    relation = regime_relation()
    key = cube_key(relation, "sales", ["cat"])
    assert cache.load(key) is None
    assert not cache.directory.exists()
    # ...the first store creates it.
    cache.store(key, ExplanationCube(relation, ["cat"], "sales"))
    assert cache.directory.is_dir()
    assert cache.load(key) is not None


def test_clear_removes_orphaned_temp_files(cache):
    relation = regime_relation()
    cube = ExplanationCube(relation, ["cat"], "sales")
    cache.store(cube_key(relation, "sales", ["cat"]), cube)
    # A writer killed between mkstemp and os.replace leaves a .tmp file.
    (cache.directory / f"orphan{CACHE_SUFFIX}.tmp").write_bytes(b"partial")
    assert cache.clear() == 2
    assert list(cache.directory.iterdir()) == []


def test_entries_do_not_load_series_arrays(cache, monkeypatch):
    """inspect must stay metadata-only: loading a series array is a bug."""
    relation = regime_relation()
    cube = ExplanationCube(relation, ["cat"], "sales")
    cache.store(cube_key(relation, "sales", ["cat"]), cube)
    import numpy.lib.npyio as npyio

    original = npyio.NpzFile.__getitem__

    def guarded(self, name):
        assert name == "header", f"entries() touched array member {name!r}"
        return original(self, name)

    monkeypatch.setattr(npyio.NpzFile, "__getitem__", guarded)
    entries = cache.entries()
    assert len(entries) == 1 and entries[0].valid


def test_store_rejects_non_json_values(cache):
    relation = regime_relation()
    cube = ExplanationCube(relation, ["cat"], "sales")
    weird = ExplanationCube.from_arrays(
        aggregate=cube.aggregate,
        measure=cube.measure,
        explain_by=cube.explain_by,
        labels=tuple(str(label).encode() for label in cube.labels),  # bytes: not JSON
        overall=cube.overall_values,
        explanations=cube.explanations,
        supports=cube.supports,
        included=cube.included_values,
        excluded=cube.excluded_values,
    )
    with pytest.raises(TypeError):
        cache.store(cube_key(relation, "sales", ["cat"]), weird)


def test_non_json_labels_degrade_to_uncached(cache):
    """datetime-style labels must not crash a cache-enabled explain."""
    import datetime

    from repro.relation.schema import Schema
    from repro.relation.table import Relation

    days = [datetime.date(2024, 1, d + 1) for d in range(6)]
    columns = {
        "t": np.asarray([d for d in days for _ in ("a", "b")], dtype=object),
        "cat": np.asarray(["a", "b"] * len(days), dtype=object),
        "sales": np.asarray(
            [float(i) for i, _ in enumerate(days) for _ in ("a", "b")]
        ),
    }
    schema = Schema.build(dimensions=["cat"], measures=["sales"], time="t")
    relation = Relation(columns, schema)
    cube, hit = load_or_build(cache, relation, ["cat"], "sales")
    assert not hit
    assert cube.labels == tuple(days)
    assert cache.entries() == []  # nothing persisted, nothing crashed
    # And a second call is still a (correct) miss, never a crash.
    again, hit = load_or_build(cache, relation, ["cat"], "sales")
    assert not hit and _cubes_equal(cube, again)


def test_custom_aggregate_bypasses_cache(cache):
    from repro.relation.aggregates import Sum

    class TrimmedSum(Sum):
        name = "sum"  # deliberately shadows the registry name

    relation = regime_relation()
    cube, hit = load_or_build(cache, relation, ["cat"], "sales", aggregate=TrimmedSum())
    assert not hit
    assert cache.entries() == []  # never stored under the shadowed name
    # A genuine registry aggregate still caches normally afterwards.
    load_or_build(cache, relation, ["cat"], "sales", aggregate="sum")
    _, hit = load_or_build(cache, relation, ["cat"], "sales", aggregate="sum")
    assert hit


def test_fingerprint_distinguishes_cell_types():
    from tests.conftest import build_relation

    as_str = build_relation(
        {"t": ["t0", "t1"], "cat": np.asarray(["1", "2"], dtype=object), "m": [1.0, 2.0]},
        dimensions=["cat"], measures=["m"], time="t",
    )
    as_int = build_relation(
        {"t": ["t0", "t1"], "cat": np.asarray([1, 2], dtype=object), "m": [1.0, 2.0]},
        dimensions=["cat"], measures=["m"], time="t",
    )
    assert as_str.fingerprint() != as_int.fingerprint()


def test_max_entries_evicts_oldest(tmp_path):
    import os

    cache = RollupCache(tmp_path, max_entries=2)
    paths = []
    for switch in (8, 10, 12):
        relation = regime_relation(switch=switch)
        cube = ExplanationCube(relation, ["cat"], "sales")
        key = cube_key(relation, "sales", ["cat"])
        path = cache.store(key, cube)
        paths.append(path)
        os.utime(path, (switch, switch))  # deterministic ordering
    assert not paths[0].exists()  # oldest evicted
    assert paths[1].exists() and paths[2].exists()
    assert len(cache.entries()) == 2


def test_fingerprint_framing_resists_separator_injection():
    """Cell contents containing framing bytes must not collide."""
    from tests.conftest import build_relation

    def rel(values):
        return build_relation(
            {"t": ["t0", "t1"], "cat": np.asarray(values, dtype=object), "m": [1.0, 2.0]},
            dimensions=["cat"], measures=["m"], time="t",
        )

    left = rel(["a\x1fstr\x1eb", "c"])
    right = rel(["a", "b\x1fstr\x1ec"])
    assert left.fingerprint() != right.fingerprint()
    shifted = rel(["ab", "c"])
    also_shifted = rel(["a", "bc"])
    assert shifted.fingerprint() != also_shifted.fingerprint()


def test_eviction_spares_recently_loaded_entries(tmp_path):
    """Eviction is LRU: a hit refreshes the entry, store order alone does not."""
    import os

    cache = RollupCache(tmp_path, max_entries=2)
    keys = []
    for index, switch in enumerate((8, 10)):
        relation = regime_relation(switch=switch)
        key = cube_key(relation, "sales", ["cat"])
        path = cache.store(key, ExplanationCube(relation, ["cat"], "sales"))
        os.utime(path, (index + 1, index + 1))
        keys.append(key)
    assert cache.load(keys[0]) is not None  # refreshes mtime of the older entry
    relation = regime_relation(switch=12)
    cache.store(cube_key(relation, "sales", ["cat"]),
                ExplanationCube(relation, ["cat"], "sales"))
    assert cache.load(keys[0]) is not None  # hot entry survived
    assert cache.load(keys[1]) is None      # cold entry was evicted


def test_fingerprint_handles_bytes_columns():
    """S-dtype columns hash raw bytes: no decode crash, no str collision."""
    from tests.conftest import build_relation

    def rel(values):
        return build_relation(
            {"t": ["t0", "t1"], "cat": np.asarray(values), "m": [1.0, 2.0]},
            dimensions=["cat"], measures=["m"], time="t",
        )

    non_ascii = rel([b"caf\xc3\xa9", b"x"])
    assert non_ascii.fingerprint() == rel([b"caf\xc3\xa9", b"x"]).fingerprint()
    assert rel([b"ab", b"c"]).fingerprint() != rel(["ab", "c"]).fingerprint()


def test_unwritable_cache_dir_degrades_to_uncached(tmp_path):
    import os
    import sys

    if os.geteuid() == 0:  # root bypasses permission bits
        pytest.skip("permission test requires a non-root uid")
    locked = tmp_path / "locked"
    locked.mkdir()
    locked.chmod(0o500)
    try:
        cache = RollupCache(locked)
        relation = regime_relation()
        cube, hit = load_or_build(cache, relation, ["cat"], "sales")
        assert not hit and cube.n_explanations > 0
    finally:
        locked.chmod(0o700)


# ----------------------------------------------------------------------
# Cross-process racers: store/load/clear from two processes at once
# ----------------------------------------------------------------------
_RACER_SCRIPT = """
import sys, shutil, traceback
sys.path.insert(0, {src!r})
from repro.cube.cache import RollupCache, cube_key
from repro.cube.datacube import ExplanationCube
from repro.relation.schema import Schema
from repro.relation.table import Relation

directory = {directory!r}
role = {role!r}

def relation(shift):
    rows = {{"t": [], "cat": [], "m": []}}
    for t in range(6):
        for cat in ("a", "b"):
            rows["t"].append(f"t{{t}}")
            rows["cat"].append(cat)
            rows["m"].append(float(t * 2 + shift + (1 if cat == "a" else 0)))
    schema = Schema.build(dimensions=["cat"], measures=["m"], time="t")
    return Relation(rows, schema)

try:
    cache = RollupCache(directory, max_entries=2)
    pairs = []
    for shift in range(3):
        rel = relation(shift)
        pairs.append(
            (cube_key(rel, "m", ["cat"]), ExplanationCube(rel, ["cat"], "m"))
        )
    for round_ in range(40):
        key, cube = pairs[round_ % len(pairs)]
        cache.store(key, cube)  # also exercises LRU eviction (max_entries=2)
        loaded = cache.load(key)
        # A racer may clear between store and load; both outcomes are
        # legal, but a loaded cube must be complete and correct.
        if loaded is not None:
            assert loaded.explanations == cube.explanations
            assert loaded.included_values.tobytes() == cube.included_values.tobytes()
        cache.entries()
        if role == "destroyer" and round_ % 5 == 4:
            cache.clear()
        if role == "destroyer" and round_ % 11 == 10:
            # Harsher than clear(): remove the directory itself, which
            # store() must survive by re-creating it and retrying.
            shutil.rmtree(directory, ignore_errors=True)
except Exception:
    traceback.print_exc()
    sys.exit(1)
sys.exit(0)
"""


def test_two_process_store_clear_race(tmp_path):
    """Two processes hammering store/load/clear/rmtree never corrupt or crash.

    Regression test for the cross-process hardening: stores are atomic
    (temp file + rename) and retry once when a concurrent clear() — or an
    outright directory removal — yanks the cache out from under them;
    loads and entries() treat vanished files as misses, never as errors.
    """
    import subprocess
    import sys
    from pathlib import Path

    src = str(Path(__file__).resolve().parents[1] / "src")
    directory = str(tmp_path / "shared-cache")
    processes = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _RACER_SCRIPT.format(src=src, directory=directory, role=role),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for role in ("storer", "destroyer")
    ]
    outputs = [process.communicate(timeout=120) for process in processes]
    for process, (out, err) in zip(processes, outputs):
        assert process.returncode == 0, f"racer failed:\n{out}\n{err}"
    # The cache is still fully usable afterwards.
    cache = RollupCache(directory)
    relation = regime_relation()
    key = cube_key(relation, "sales", ["cat"])
    cache.store(key, ExplanationCube(relation, ["cat"], "sales"))
    assert cache.load(key) is not None
