"""Tests for the end-to-end ExplainPipeline."""

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.exceptions import SegmentationError
from repro.relation.predicates import Conjunction
from tests.conftest import regime_relation, two_attr_relation


def run(relation, explain_by, measure, **overrides):
    config_kwargs = {"use_filter": False}
    config_kwargs.update(overrides)
    pipeline = ExplainPipeline(
        relation, measure, explain_by, config=ExplainConfig(**config_kwargs)
    )
    return pipeline.run()


def test_recovers_regime_switch():
    result = run(regime_relation(), ["cat"], "sales", k=2)
    assert result.k == 2
    assert result.cuts == (12,)
    assert result.segments[0].explanations[0].explanation == Conjunction.from_items(
        [("cat", "a")]
    )
    assert result.segments[1].explanations[0].explanation == Conjunction.from_items(
        [("cat", "b")]
    )


def test_auto_k_elbow():
    result = run(regime_relation(), ["cat"], "sales")
    assert result.k_was_auto
    assert result.k >= 2
    assert 12 in result.cuts  # the true switch must be a boundary


def test_k_variance_curve_monotone_head():
    result = run(regime_relation(), ["cat"], "sales")
    curve = result.k_variance_curve
    assert curve[2] <= curve[1] + 1e-9


def test_timings_sum_to_total():
    result = run(regime_relation(), ["cat"], "sales", k=2)
    timings = result.timings
    assert timings["total"] == pytest.approx(
        timings["precomputation"] + timings["cascading"] + timings["segmentation"]
    )


def test_epsilon_reported():
    result = run(regime_relation(), ["cat"], "sales", k=2)
    assert result.epsilon == 3
    assert result.filtered_epsilon == 3


def test_filter_reduces_epsilon():
    relation = regime_relation()
    result = ExplainPipeline(
        relation,
        "sales",
        ["cat"],
        config=ExplainConfig(use_filter=True, filter_ratio=0.3, k=2),
    ).run()
    # Category c (flat 7, always under 30% of the overall) is filtered.
    assert result.filtered_epsilon < result.epsilon


def test_multi_attribute_pipeline_with_o1():
    result = run(
        two_attr_relation(),
        ["a", "b"],
        "m",
        k=2,
        use_guess_verify=True,
        initial_guess=4,
    )
    assert result.k == 2
    # The second regime is driven by the (a=z & b=q) cell; since only that
    # cell moves inside a=z, gamma(a=z) == gamma(a=z & b=q) and the DP may
    # return either representation — both must constrain a=z.
    top = result.segments[1].explanations[0].explanation
    assert ("a", "z") in top.items


def test_sketch_mode_full_resolution_variance():
    relation = regime_relation(n=40, switch=20)
    vanilla = ExplainPipeline(
        relation, "sales", ["cat"], config=ExplainConfig.vanilla(k=2)
    ).run()
    sketched = ExplainPipeline(
        relation,
        "sales",
        ["cat"],
        config=ExplainConfig.vanilla(k=2).updated(use_sketch=True),
    ).run()
    assert sketched.cuts == vanilla.cuts
    assert sketched.total_variance == pytest.approx(vanilla.total_variance, rel=1e-6)


def test_requested_k_too_large():
    with pytest.raises(SegmentationError):
        run(regime_relation(n=6), ["cat"], "sales", k=10)


def test_smoothing_window_applied():
    result = run(regime_relation(), ["cat"], "sales", k=2, smoothing_window=3)
    # Smoothed series differs from raw aggregate but has the same labels.
    assert len(result.series) == 24
    raw = run(regime_relation(), ["cat"], "sales", k=2)
    assert not np.allclose(result.series.values, raw.series.values)


def test_boundaries_and_segment_lookup():
    result = run(regime_relation(), ["cat"], "sales", k=2)
    assert result.boundaries == (0, 12, 23)
    assert result.segment_at(0).start == 0
    assert result.segment_at(12).start == 12
    assert result.segment_at(23).stop == 23
    with pytest.raises(IndexError):
        result.segment_at(99)


def test_describe_mentions_all_segments():
    result = run(regime_relation(), ["cat"], "sales", k=2)
    text = result.describe()
    assert "cat=a" in text and "cat=b" in text
    assert text.count("~") == 2
