"""Unit tests for the segment scorer."""

import numpy as np
import pytest

from repro.cube.datacube import ExplanationCube
from repro.diff.scorer import SegmentScorer
from repro.exceptions import QueryError
from repro.relation.predicates import Conjunction
from tests.conftest import regime_relation


@pytest.fixture
def scorer():
    cube = ExplanationCube(regime_relation(), ["cat"], "sales")
    return SegmentScorer(cube)


def test_gamma_matches_manual_computation(scorer):
    cube = scorer.cube
    index = cube.index_of(Conjunction.from_items([("cat", "a")]))
    # Over [0, 5]: category a rises 4/step, others flat -> gamma = 20.
    assert scorer.gamma(0, 5)[index] == pytest.approx(20.0)
    assert scorer.tau(0, 5)[index] == 1


def test_gamma_tau_consistency(scorer):
    gammas, taus = scorer.gamma_tau(2, 14)
    assert np.allclose(gammas, scorer.gamma(2, 14))
    assert np.array_equal(taus, scorer.tau(2, 14))


def test_invalid_segment_rejected(scorer):
    with pytest.raises(QueryError):
        scorer.gamma(5, 5)
    with pytest.raises(QueryError):
        scorer.gamma(-1, 3)
    with pytest.raises(QueryError):
        scorer.gamma(0, 99)


def test_rank_segment_orders_by_gamma(scorer):
    ranked = scorer.rank_segment(0, 11)
    gammas = [s.gamma for s in ranked]
    assert gammas == sorted(gammas, reverse=True)
    assert ranked[0].explanation == Conjunction.from_items([("cat", "a")])
    top1 = scorer.rank_segment(0, 11, top=1)
    assert len(top1) == 1


def test_scored_single(scorer):
    cube = scorer.cube
    index = cube.index_of(Conjunction.from_items([("cat", "b")]))
    scored = scorer.scored(index, 12, 23)
    assert scored.tau == 1
    assert scored.effect_symbol == "+"
    assert scored.gamma == pytest.approx(5.0 * 11)


def test_indices_selection(scorer):
    cube = scorer.cube
    subset = np.asarray([1, 2])
    full = scorer.gamma(0, 23)
    partial = scorer.gamma(0, 23, subset)
    assert np.allclose(partial, full[subset])


def test_gamma_tau_many_matches_single(scorer):
    starts = np.asarray([0, 2, 5])
    stops = np.asarray([4, 9, 23])
    gammas, taus = scorer.gamma_tau_many(starts, stops)
    assert gammas.shape == (scorer.n_explanations, 3)
    assert taus.dtype == np.int8
    for column, (start, stop) in enumerate(zip(starts, stops)):
        single_gamma, single_tau = scorer.gamma_tau(int(start), int(stop))
        assert np.allclose(gammas[:, column], single_gamma)
        assert np.array_equal(taus[:, column], single_tau.astype(np.int8))


def test_overall_changes_batch(scorer):
    starts = np.asarray([0, 3])
    stops = np.asarray([5, 7])
    changes = scorer.overall_changes(starts, stops)
    for column, (start, stop) in enumerate(zip(starts, stops)):
        assert changes[column] == pytest.approx(
            scorer.cube.overall_change(int(start), int(stop))
        )


def test_gamma_many_matches_gamma_tau_many(scorer):
    starts = np.asarray([0, 2, 5])
    stops = np.asarray([4, 9, 23])
    gammas, _ = scorer.gamma_tau_many(starts, stops)
    assert np.array_equal(scorer.gamma_many(starts, stops), gammas)


def test_gamma_tau_many_rejects_bad_batches(scorer):
    with pytest.raises(QueryError):
        scorer.gamma_tau_many(np.asarray([0, 5]), np.asarray([4]))
    with pytest.raises(QueryError):
        scorer.gamma_tau_many(np.asarray([5]), np.asarray([5]))
    with pytest.raises(QueryError):
        scorer.gamma_tau_many(np.asarray([0]), np.asarray([99]))


def test_batch_rejects_non_integer_positions(scorer):
    with pytest.raises(QueryError, match="integer positions"):
        scorer.gamma_tau_many(np.asarray([0.5]), np.asarray([4.0]))
    with pytest.raises(QueryError, match="integer positions"):
        scorer.overall_changes(np.asarray([0]), np.asarray([4.0]))


def test_batch_error_names_offending_segment(scorer):
    with pytest.raises(QueryError, match=r"\[5, 99\] at batch position 1"):
        scorer.gamma_tau_many(np.asarray([0, 5]), np.asarray([4, 99]))
