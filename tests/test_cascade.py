"""Unit and property tests for the Cascading Analysts dynamic program."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ca.bruteforce import cascading_optimum, is_non_overlapping
from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.exceptions import ExplanationError
from repro.relation.predicates import Conjunction


def conj(**items) -> Conjunction:
    return Conjunction.from_items(sorted(items.items()))


def grid_candidates(n_a: int = 2, n_b: int = 2) -> list[Conjunction]:
    """All order-1 and order-2 conjunctions over a small A x B grid."""
    out = [conj(A=a) for a in range(n_a)]
    out += [conj(B=b) for b in range(n_b)]
    out += [conj(A=a, B=b) for a in range(n_a) for b in range(n_b)]
    return out


def test_tree_structure_flat():
    candidates = [conj(A=a) for a in range(4)]
    tree = DrillDownTree(candidates)
    assert tree.is_flat
    assert tree.n_nodes == 5
    assert tree.n_candidates == 4


def test_tree_structure_dag():
    tree = DrillDownTree(grid_candidates())
    assert not tree.is_flat
    # root + 4 order-1 + 4 order-2
    assert tree.n_nodes == 9
    # (A=0 & B=0) must be reachable from both parents.
    groups = dict(tree.children_of(0))
    assert set(groups) == {"A", "B"}


def test_virtual_ancestors_created():
    # Only a deep candidate: its sub-conjunctions become virtual nodes.
    tree = DrillDownTree([conj(A=0, B=0)])
    assert tree.n_candidates == 1
    assert tree.n_nodes == 4  # root, A=0, B=0, A=0&B=0
    assert tree.candidate_of(0) == -1


def test_duplicate_candidates_rejected():
    with pytest.raises(ExplanationError):
        DrillDownTree([conj(A=0), conj(A=0)])


def test_empty_conjunction_rejected():
    with pytest.raises(ExplanationError):
        DrillDownTree([Conjunction(())])


def test_flat_fast_path_matches_sort():
    candidates = [conj(A=a) for a in range(6)]
    solver = CascadingAnalysts(DrillDownTree(candidates), m=3)
    gamma = np.asarray([1.0, 9.0, 3.0, 7.0, 0.0, 2.0])
    result = solver.solve(gamma)
    assert result.indices == (1, 3, 2)
    assert result.gammas == (9.0, 7.0, 3.0)
    assert result.best == (0.0, 9.0, 16.0, 19.0)


def test_flat_fast_path_excludes_zero_scores():
    candidates = [conj(A=a) for a in range(3)]
    solver = CascadingAnalysts(DrillDownTree(candidates), m=3)
    result = solver.solve(np.asarray([0.0, 5.0, 0.0]))
    assert result.indices == (1,)


def test_hierarchy_blocks_ancestor_and_descendant():
    # Selecting A=0 excludes (A=0 & B=0); the DP must pick the better mix.
    candidates = [conj(A=0), conj(A=0, B=0), conj(A=0, B=1)]
    solver = CascadingAnalysts(DrillDownTree(candidates), m=2)
    # Children together beat the parent.
    result = solver.solve(np.asarray([5.0, 4.0, 3.0]))
    assert set(result.indices) == {1, 2}
    # Parent beats any pair of children.
    result = solver.solve(np.asarray([9.0, 4.0, 3.0]))
    assert result.indices == (0,)


def test_root_dimension_is_shared_by_all_selected():
    """Every selected explanation must constrain the root drill dimension."""
    candidates = [conj(A=0, B=0), conj(B=1, C=0), conj(A=1, C=1)]
    solver = CascadingAnalysts(DrillDownTree(candidates), m=3)
    result = solver.solve(np.asarray([1.0, 1.0, 1.0]))
    # Pairwise conflicting, but no common dimension: at most 2 selectable.
    assert len(result.indices) == 2


def test_gamma_validation():
    solver = CascadingAnalysts(DrillDownTree([conj(A=0)]), m=2)
    with pytest.raises(ExplanationError):
        solver.solve(np.asarray([1.0, 2.0]))  # wrong length
    with pytest.raises(ExplanationError):
        solver.solve(np.asarray([-1.0]))  # negative score


def test_m_validation():
    with pytest.raises(ExplanationError):
        CascadingAnalysts(DrillDownTree([conj(A=0)]), m=0)


def test_batch_matches_single():
    candidates = grid_candidates(3, 2)
    solver = CascadingAnalysts(DrillDownTree(candidates), m=3)
    rng = np.random.default_rng(5)
    gammas = rng.uniform(0, 10, size=(17, len(candidates)))
    batch = solver.solve_batch(gammas, chunk_size=4)
    for row in range(gammas.shape[0]):
        single = solver.solve(gammas[row])
        assert batch[row].indices == single.indices
        assert batch[row].best == single.best


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_dp_equals_bruteforce_and_nonoverlap(data):
    n_a = data.draw(st.integers(2, 3))
    n_b = data.draw(st.integers(1, 2))
    candidates = grid_candidates(n_a, n_b)
    # Randomly drop some candidates to exercise virtual nodes.
    keep = data.draw(
        st.lists(st.booleans(), min_size=len(candidates), max_size=len(candidates))
    )
    kept = [c for c, flag in zip(candidates, keep) if flag]
    if not kept:
        return
    gamma = np.asarray(
        data.draw(
            st.lists(
                st.floats(0, 100, allow_nan=False),
                min_size=len(kept),
                max_size=len(kept),
            )
        )
    )
    m = data.draw(st.integers(1, 3))
    solver = CascadingAnalysts(DrillDownTree(kept), m=m)
    result = solver.solve(gamma)
    expected = cascading_optimum(kept, gamma, m)
    assert result.total == pytest.approx(expected)
    assert sum(result.gammas) == pytest.approx(result.total)
    assert len(result.indices) <= m
    assert is_non_overlapping([kept[i] for i in result.indices])
    # Best[] is monotone non-decreasing.
    assert all(b2 >= b1 - 1e-12 for b1, b2 in zip(result.best, result.best[1:]))


def test_with_context_annotation():
    candidates = [conj(A=0), conj(A=1)]
    solver = CascadingAnalysts(DrillDownTree(candidates), m=2)
    result = solver.solve(np.asarray([2.0, 1.0]))
    annotated = result.with_context(taus=[1, -1], source_segment=(0, 5))
    assert annotated.taus == (1, -1)
    assert annotated.source_segment == (0, 5)
    assert annotated.indices == result.indices
