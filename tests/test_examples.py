"""Smoke tests executing the example scripts end to end.

The three heavyweight case-study examples (covid, sp500, liquor) are
exercised indirectly by the integration tests and benchmarks; here we run
the fast ones exactly as a user would (``python examples/<name>.py``).
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "script", ["quickstart.py", "streaming_updates.py", "advanced_analysis.py"]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_finds_the_handover(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "category=a" in out and "category=b" in out


def test_streaming_tracks_latest_regime(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "streaming_updates.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Latest regime driver: category=social" in out


def test_advanced_analysis_recommends_pack_or_bv(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "advanced_analysis.py"), run_name="__main__")
    out = capsys.readouterr().out
    first_line = next(
        line for line in out.splitlines() if "coverage=" in line
    )
    assert "pack" in first_line or "bottle_volume_ml" in first_line
    assert "HINT:" in out