"""Edge cases and failure-injection tests across the whole pipeline."""

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.pipeline import ExplainPipeline
from repro.diff.metrics import available_metrics
from repro.exceptions import SegmentationError
from repro.segmentation.distance import VARIANTS
from tests.conftest import build_relation, regime_relation, two_attr_relation


def test_avg_aggregate_end_to_end():
    """Explaining an AVG query uses non-linear state subtraction."""
    rows = {"t": [], "cat": [], "v": []}
    for t in range(12):
        for cat, value in (("hot", 10.0 + (5.0 * t if t >= 6 else 0.0)), ("cold", 4.0)):
            rows["t"].append(f"t{t:02d}")
            rows["cat"].append(cat)
            rows["v"].append(value)
    relation = build_relation(rows, dimensions=["cat"], measures=["v"], time="t")
    result = TSExplain(
        relation,
        measure="v",
        explain_by=["cat"],
        aggregate="avg",
        config=ExplainConfig(use_filter=False, k=2),
    ).explain()
    # The transition unit [5, 6] may be assigned to either side of the cut.
    assert result.cuts[0] in (5, 6)
    # With AVG, excluding either category changes the mean by the same
    # amount, so gamma(hot) == gamma(cold); but the change effects differ:
    # including 'hot' pushes the average up, 'cold' drags it down.
    by_name = {
        repr(s.explanation): s.tau for s in result.segments[1].explanations
    }
    assert by_name.get("cat=hot") == 1
    assert by_name.get("cat=cold") == -1


def test_negative_measure_values():
    """Profit/loss-style measures (negative values) work end to end."""
    rows = {"t": [], "cat": [], "v": []}
    for t in range(10):
        rows["t"].append(f"t{t}")
        rows["cat"].append("loss")
        rows["v"].append(-5.0 * t)
        rows["t"].append(f"t{t}")
        rows["cat"].append("gain")
        rows["v"].append(2.0 * t)
    relation = build_relation(rows, dimensions=["cat"], measures=["v"], time="t")
    result = TSExplain(
        relation,
        measure="v",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=1),
    ).explain()
    top = result.segments[0].explanations[0]
    assert repr(top.explanation) == "cat=loss"
    assert top.tau == -1


def test_two_point_series():
    relation = build_relation(
        {"t": ["a", "a", "b", "b"], "cat": ["x", "y", "x", "y"], "v": [1.0, 1.0, 5.0, 1.0]},
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )
    result = TSExplain(
        relation, measure="v", explain_by=["cat"], config=ExplainConfig(use_filter=False)
    ).explain()
    assert result.k == 1
    assert repr(result.segments[0].explanations[0].explanation) == "cat=x"


def test_constant_series_has_no_explanations():
    rows = {"t": [], "cat": [], "v": []}
    for t in range(8):
        for cat in ("x", "y"):
            rows["t"].append(f"t{t}")
            rows["cat"].append(cat)
            rows["v"].append(3.0)
    relation = build_relation(rows, dimensions=["cat"], measures=["v"], time="t")
    result = TSExplain(
        relation, measure="v", explain_by=["cat"], config=ExplainConfig(use_filter=False, k=1)
    ).explain()
    assert result.segments[0].explanations == ()
    assert result.total_variance == pytest.approx(0.0)


def test_single_candidate():
    rows = {"t": [f"t{t}" for t in range(6)], "cat": ["only"] * 6, "v": list(range(6))}
    relation = build_relation(rows, dimensions=["cat"], measures=["v"], time="t")
    result = TSExplain(
        relation, measure="v", explain_by=["cat"], config=ExplainConfig(use_filter=False, k=2)
    ).explain()
    assert all(
        repr(s.explanation) == "cat=only"
        for seg in result.segments
        for s in seg.explanations
    )


@pytest.mark.parametrize("metric", available_metrics())
def test_all_difference_metrics_end_to_end(metric):
    result = ExplainPipeline(
        regime_relation(),
        "sales",
        ["cat"],
        config=ExplainConfig(use_filter=False, k=2, metric=metric),
    ).run()
    assert result.k == 2
    assert result.segments[0].explanations  # something was explained


@pytest.mark.parametrize("variant", VARIANTS)
def test_all_variance_variants_end_to_end(variant):
    result = ExplainPipeline(
        regime_relation(),
        "sales",
        ["cat"],
        config=ExplainConfig(use_filter=False, k=2, variant=variant),
    ).run()
    assert result.k == 2
    # All designs should find the true switch on clean data.
    assert abs(result.cuts[0] - 12) <= 1


def test_max_order_one_restricts_conjunctions():
    result = ExplainPipeline(
        two_attr_relation(),
        "m",
        ["a", "b"],
        config=ExplainConfig(use_filter=False, k=2, max_order=1),
    ).run()
    for segment in result.segments:
        for scored in segment.explanations:
            assert scored.explanation.order == 1


def test_dedup_disabled_end_to_end():
    result = ExplainPipeline(
        two_attr_relation(),
        "m",
        ["a", "b"],
        config=ExplainConfig(use_filter=False, k=2, deduplicate=False),
    ).run()
    assert result.epsilon >= 11  # 3 + 2 + 6 combos


def test_smoothing_window_larger_than_series():
    result = ExplainPipeline(
        regime_relation(n=10, switch=5),
        "sales",
        ["cat"],
        config=ExplainConfig(use_filter=False, k=2, smoothing_window=50),
    ).run()
    # Degenerates towards a global mean but must still run.
    assert result.k == 2


def test_k_equals_max_segments():
    relation = regime_relation(n=30, switch=15)
    result = ExplainPipeline(
        relation,
        "sales",
        ["cat"],
        config=ExplainConfig(use_filter=False, k=20, k_max=20),
    ).run()
    assert result.k == 20


def test_series_too_short():
    relation = build_relation(
        {"t": ["a", "a"], "cat": ["x", "y"], "v": [1.0, 2.0]},
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )
    with pytest.raises(SegmentationError):
        ExplainPipeline(
            relation, "v", ["cat"], config=ExplainConfig(use_filter=False, k=2)
        ).run()


def test_numeric_dimension_values():
    """Integer-valued dimensions (like Pack=12) survive the whole pipeline."""
    rows = {"t": [], "pack": [], "v": []}
    for t in range(10):
        for pack in (6, 12):
            rows["t"].append(f"t{t}")
            rows["pack"].append(pack)
            rows["v"].append(10.0 * t if pack == 12 and t >= 5 else 1.0)
    relation = build_relation(rows, dimensions=["pack"], measures=["v"], time="t")
    result = TSExplain(
        relation, measure="v", explain_by=["pack"], config=ExplainConfig(use_filter=False, k=2)
    ).explain()
    top = result.segments[1].explanations[0].explanation
    assert top.value_of("pack") == 12


def test_filter_can_empty_the_candidate_set():
    """An extreme ratio removes everything; the pipeline must still answer."""
    result = ExplainPipeline(
        regime_relation(),
        "sales",
        ["cat"],
        config=ExplainConfig(use_filter=True, filter_ratio=0.999, k=2),
    ).run()
    assert result.filtered_epsilon == 0
    assert all(segment.explanations == () for segment in result.segments)
