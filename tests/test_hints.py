"""Tests for high-variance segment hints and drill-down (section 9)."""

import pytest

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.hints import drill_down, variance_hints
from repro.exceptions import QueryError
from tests.conftest import build_relation


def three_regime_relation(n=36):
    """Regimes at [0,12), [12,24), [24,36): a, then b, then c drives."""
    rows = {"t": [], "cat": [], "v": []}
    for t in range(n):
        for cat in ("a", "b", "c"):
            base = 10.0
            if cat == "a" and t < 12:
                base += 5.0 * t
            if cat == "a" and t >= 12:
                base += 5.0 * 11
            if cat == "b" and 12 <= t < 24:
                base += 6.0 * (t - 12)
            if cat == "b" and t >= 24:
                base += 6.0 * 11
            if cat == "c" and t >= 24:
                base += 7.0 * (t - 24)
            rows["t"].append(f"t{t:03d}")
            rows["cat"].append(cat)
            rows["v"].append(base)
    return build_relation(rows, dimensions=["cat"], measures=["v"], time="t")


@pytest.fixture
def engine():
    return TSExplain(
        three_regime_relation(),
        measure="v",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False),
    )


def test_underfitted_k_produces_hint(engine):
    # K=2 forces one segment to straddle a regime change.
    result = engine.explain(config=ExplainConfig(use_filter=False, k=2))
    hints = variance_hints(result, factor=1.2)
    assert hints
    # The flagged segment is the straddling (higher-variance) one.
    assert hints[0].variance == max(s.variance for s in result.segments)
    assert "drilling down" in hints[0].describe()


def test_well_fitted_k_produces_no_hints(engine):
    result = engine.explain(config=ExplainConfig(use_filter=False, k=3))
    # The transition unit [11, 12] may be assigned to either side.
    assert abs(result.cuts[0] - 12) <= 1
    assert abs(result.cuts[1] - 24) <= 1
    assert variance_hints(result, factor=1.5) == []


def test_drill_down_splits_flagged_segment(engine):
    result = engine.explain(config=ExplainConfig(use_filter=False, k=2))
    hint = variance_hints(result, factor=1.2)[0]
    inner = drill_down(engine, hint.segment)
    # The inner run finds the regime change the coarse run straddled.
    inner_cut_positions = {
        engine.series().position_of(label) for label in inner.cut_labels
    }
    assert 12 in inner_cut_positions or 24 in inner_cut_positions


def test_drill_down_too_short_rejected(engine):
    result = engine.explain(config=ExplainConfig(use_filter=False, k=3))
    short = result.segments[0]
    if short.length >= 3:
        pytest.skip("segment long enough; construct a short one instead")
    with pytest.raises(QueryError):
        drill_down(engine, short)


def test_factor_validation(engine):
    result = engine.explain(config=ExplainConfig(use_filter=False, k=2))
    with pytest.raises(QueryError):
        variance_hints(result, factor=0.0)
