"""Unit tests for the delta-maintenance stack (streaming appends).

Covers the append ledger on the cube (:mod:`repro.cube.delta`),
``merge_cubes``, targeted scorer-LRU invalidation in
``ExplainSession.append``, incremental ``SegmentationCosts.extend``, the
format-2 cache entries with append state, chained snapshot keys with the
append log, and the CLI ``--follow`` loop.  The end-to-end equivalence
properties live in ``tests/test_properties.py``.
"""

from __future__ import annotations

import contextlib
import csv
import io
import os
import threading
import time

import numpy as np
import pytest

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.cli import main as cli_main
from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.core.streaming import StreamingExplainer
from repro.cube.cache import (
    AppendLog,
    RollupCache,
    chain_fingerprint,
    chained_key,
    cube_key,
)
from repro.cube.datacube import ExplanationCube, merge_cubes
from repro.diff.scorer import SegmentScorer
from repro.exceptions import (
    ExplanationError,
    QueryError,
    SchemaError,
    SegmentationError,
)
from repro.relation.schema import Schema
from repro.relation.table import Relation
from repro.segmentation.variance import SegmentationCosts
from tests.conftest import build_relation


def day_rows(days, value=lambda t, cat: 10.0 + t, cats=("a", "b")):
    rows = {"t": [], "cat": [], "m": []}
    for t in days:
        for cat in cats:
            rows["t"].append(f"t{t:03d}")
            rows["cat"].append(cat)
            rows["m"].append(float(value(t, cat)))
    return build_relation(rows, dimensions=["cat"], measures=["m"], time="t")


# ----------------------------------------------------------------------
# ExplanationCube.append
# ----------------------------------------------------------------------
class TestCubeAppend:
    def test_append_info_reports_what_changed(self):
        cube = ExplanationCube(day_rows(range(10)), ["cat"], "m")
        info = cube.append(day_rows([9, 10, 11]))
        assert info.old_n_times == 10
        assert info.n_times == 12
        assert info.new_labels == ("t010", "t011")
        assert info.touched_positions == (9,)
        assert info.first_changed_position == 9
        assert not info.candidates_changed

    def test_pure_extension_leaves_history_untouched(self):
        cube = ExplanationCube(day_rows(range(10)), ["cat"], "m")
        before = cube.included_values[:, :10].copy()
        info = cube.append(day_rows([10, 11]))
        assert info.first_changed_position == 10
        assert info.touched_positions == ()
        np.testing.assert_array_equal(cube.included_values[:, :10], before)

    def test_empty_delta_is_a_noop(self):
        cube = ExplanationCube(day_rows(range(6)), ["cat"], "m")
        before = cube.included_values.tobytes()
        info = cube.append(day_rows([]))
        assert info.is_noop
        assert cube.n_times == 6
        assert cube.included_values.tobytes() == before

    def test_new_category_grows_the_candidate_set(self):
        cube = ExplanationCube(day_rows(range(8)), ["cat"], "m")
        assert cube.n_explanations == 2
        info = cube.append(day_rows([8], cats=("a", "b", "zz")))
        assert info.candidates_changed
        assert cube.n_explanations == 3
        assert "cat=zz" in {repr(conj) for conj in cube.explanations}
        # The new candidate had no rows before day 8.
        index = cube.index_of(cube.explanations[cube.n_explanations - 1])
        assert cube.included_values[index, :8].sum() == 0.0

    def test_append_can_break_containment_redundancy(self):
        """A conjunction redundant at build time appears once its parent
        gains rows it does not share (the dedup rule re-evaluated)."""
        rows = {
            "t": ["t0", "t0", "t1", "t1"],
            "a": ["x", "y", "x", "y"],
            "b": ["p", "q", "p", "q"],
            "m": [1.0, 2.0, 3.0, 4.0],
        }
        relation = build_relation(
            rows, dimensions=["a", "b"], measures=["m"], time="t"
        )
        cube = ExplanationCube(relation, ["a", "b"], "m", max_order=2)
        # a=x selects exactly b=p's rows, so the conjunction is redundant.
        assert "a=x & b=p" not in {repr(c) for c in cube.explanations}
        # New rows (x,q) and (y,p) make both parents strictly larger than
        # the conjunction, so the dedup rule no longer drops it.
        delta = build_relation(
            {"t": ["t2", "t2"], "a": ["x", "y"], "b": ["q", "p"], "m": [5.0, 6.0]},
            dimensions=["a", "b"],
            measures=["m"],
            time="t",
        )
        info = cube.append(delta)
        assert info.candidates_changed
        names = {repr(c) for c in cube.explanations}
        assert "a=x & b=p" in names and "a=x & b=q" in names
        one_shot = ExplanationCube(relation.concat(delta), ["a", "b"], "m", max_order=2)
        assert cube.explanations == one_shot.explanations
        assert cube.included_values.tobytes() == one_shot.included_values.tobytes()

    def test_backfilling_new_timestamps_is_rejected_atomically(self):
        cube = ExplanationCube(day_rows(range(5, 10)), ["cat"], "m")
        before = cube.included_values.tobytes()
        with pytest.raises(QueryError, match="precedes"):
            cube.append(day_rows([2, 3]))
        assert cube.n_times == 5
        assert cube.included_values.tobytes() == before

    def test_mismatched_schema_is_rejected(self):
        cube = ExplanationCube(day_rows(range(5)), ["cat"], "m")
        other = build_relation(
            {"t": ["t9"], "region": ["x"], "m": [1.0]},
            dimensions=["region"],
            measures=["m"],
            time="t",
        )
        with pytest.raises(SchemaError):
            cube.append(other)

    def test_derived_cubes_are_not_appendable(self):
        cube = ExplanationCube(day_rows(range(8)), ["cat"], "m")
        assert cube.appendable
        sliced = cube.slice_time(0, 5)
        assert not sliced.appendable
        with pytest.raises(ExplanationError, match="not appendable"):
            sliced.append(day_rows([8]))
        fixed = ExplanationCube(day_rows(range(8)), ["cat"], "m", appendable=False)
        assert not fixed.appendable


class TestMergeCubes:
    def test_rejects_mismatched_queries(self):
        left = ExplanationCube(day_rows(range(4)), ["cat"], "m", aggregate="sum")
        right = ExplanationCube(day_rows(range(4, 8)), ["cat"], "m", aggregate="avg")
        with pytest.raises(ExplanationError, match="different"):
            merge_cubes(left, right)

    def test_rejects_non_appendable_inputs(self):
        left = ExplanationCube(day_rows(range(4)), ["cat"], "m")
        right = ExplanationCube(day_rows(range(4, 8)), ["cat"], "m", appendable=False)
        with pytest.raises(ExplanationError, match="appendable"):
            merge_cubes(left, right)

    def test_merge_does_not_mutate_inputs(self):
        left = ExplanationCube(day_rows(range(4)), ["cat"], "m")
        right = ExplanationCube(day_rows(range(4, 8)), ["cat"], "m")
        left_bytes = left.included_values.tobytes()
        merged = merge_cubes(left, right)
        assert left.n_times == 4 and right.n_times == 4
        assert left.included_values.tobytes() == left_bytes
        assert merged.n_times == 8
        assert merged.appendable  # the merged cube keeps streaming


# ----------------------------------------------------------------------
# ExplainSession.append — targeted LRU invalidation
# ----------------------------------------------------------------------
class TestSessionAppend:
    def test_untouched_windows_survive_overlapping_ones_die(self):
        session = ExplainSession(
            day_rows(range(24)), "m", ["cat"], config=ExplainConfig(use_filter=False)
        )
        session.prepare()
        early = session.scorer("t000", "t010")
        smoothed = session.scorer(
            "t002", "t012", config=session.config.updated(smoothing_window=5)
        )
        late = session.scorer("t015", "t023")
        full = session.scorer()  # bound to the live cube object
        assert len(session._scorers) == 4

        info = session.append(day_rows([23, 24]))  # touches t023, adds t024
        assert info is not None and info.first_changed_position == 23
        keys = set(session._scorers)
        assert (0, 10) in {key[:2] for key in keys}  # early window survives
        assert (2, 12) in {key[:2] for key in keys}  # smoothing after slicing
        assert all(key[1] < 23 for key in keys)  # late + full-window dropped
        # Surviving scorers still serve byte-identical answers.
        again = session.scorer("t000", "t010")
        assert again is early
        fresh = ExplainSession(
            session.relation, "m", ["cat"], config=ExplainConfig(use_filter=False)
        )
        assert (
            again.cube.included_values.tobytes()
            == fresh.scorer("t000", "t010").cube.included_values.tobytes()
        )
        assert smoothed is session.scorer(
            "t002", "t012", config=session.config.updated(smoothing_window=5)
        )
        assert full is not session.scorer()

    def test_candidate_growth_drops_every_scorer(self):
        session = ExplainSession(
            day_rows(range(12)), "m", ["cat"], config=ExplainConfig(use_filter=False)
        )
        session.scorer("t000", "t005")
        info = session.append(day_rows([12], cats=("a", "b", "zz")))
        assert info.candidates_changed
        assert not session._scorers

    def test_unprepared_session_just_grows_the_relation(self):
        session = ExplainSession(day_rows(range(10)), "m", ["cat"])
        assert session.append(day_rows([10, 11])) is None
        assert not session.prepared
        assert session.relation.n_rows == 24
        assert session.cube.n_times == 12  # first query sees everything

    def test_windowed_query_after_append_matches_fresh_session(self):
        config = ExplainConfig(use_filter=False, k=2)
        session = ExplainSession(day_rows(range(20)), "m", ["cat"], config=config)
        session.explain()
        session.append(day_rows(range(20, 26)))
        windowed = session.explain("t004", "t024")
        fresh = ExplainSession(session.relation, "m", ["cat"], config=config)
        expected = fresh.explain("t004", "t024")
        assert [
            (s.start_label, s.stop_label, tuple(map(repr, s.explanations)))
            for s in windowed.segments
        ] == [
            (s.start_label, s.stop_label, tuple(map(repr, s.explanations)))
            for s in expected.segments
        ]

    def test_adopt_snapshot_validates_the_query(self):
        session = ExplainSession(day_rows(range(8)), "m", ["cat"])
        other = ExplanationCube(day_rows(range(8)), ["cat"], "m", aggregate="avg")
        with pytest.raises(QueryError, match="different query"):
            session.adopt_snapshot(session.relation, other)


# ----------------------------------------------------------------------
# SegmentationCosts.extend
# ----------------------------------------------------------------------
class TestCostsExtend:
    def _costs_for(self, cube, m=3):
        scorer = SegmentScorer(cube)
        solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=m)
        return scorer, solver, SegmentationCosts(scorer, solver, m=m)

    def test_extend_requires_same_candidates(self):
        cube = ExplanationCube(day_rows(range(10)), ["cat"], "m")
        scorer, solver, costs = self._costs_for(cube)
        cube.append(day_rows([10], cats=("a", "b", "zz")))
        grown_scorer = SegmentScorer(cube)
        with pytest.raises(SegmentationError, match="candidate"):
            costs.extend(grown_scorer, solver)

    def test_extend_rejects_shrunken_series(self):
        cube = ExplanationCube(day_rows(range(10)), ["cat"], "m")
        scorer, solver, costs = self._costs_for(cube)
        small = ExplanationCube(day_rows(range(5)), ["cat"], "m")
        with pytest.raises(SegmentationError, match="at least as long"):
            costs.extend(SegmentScorer(small), solver)

    def test_extend_matches_fresh_costs_after_late_arrivals(self):
        cube = ExplanationCube(day_rows(range(12)), ["cat"], "m")
        scorer, solver, costs = self._costs_for(cube)
        info = cube.append(
            day_rows([11, 12, 13], value=lambda t, cat: 50.0 if cat == "b" else 3.0)
        )
        extended = costs.extend(
            scorer, solver, first_changed_position=info.first_changed_position
        )
        fresh = SegmentationCosts(scorer, solver)
        assert extended.cost_matrix.tobytes() == fresh.cost_matrix.tobytes()
        for unit in range(extended.n_points - 1):
            left = extended.unit_result(unit)
            right = fresh.unit_result(unit)
            assert left.indices == right.indices
            assert left.gammas == right.gammas

    def test_extend_onto_a_restricted_grid(self):
        cube = ExplanationCube(day_rows(range(16)), ["cat"], "m")
        scorer, solver, costs = self._costs_for(cube)
        cube.append(day_rows(range(16, 20)))
        grid = np.asarray([0, 4, 9, 15, 16, 17, 18, 19], dtype=np.intp)
        extended = costs.extend(
            scorer, solver, cut_positions=grid, first_changed_position=16
        )
        fresh = SegmentationCosts(scorer, solver, cut_positions=grid)
        assert extended.cost_matrix.tobytes() == fresh.cost_matrix.tobytes()


# ----------------------------------------------------------------------
# Cache format 2 + chained keys + append log
# ----------------------------------------------------------------------
class TestDeltaCache:
    def test_appendable_cube_round_trips_with_its_ledger(self, tmp_path):
        relation = day_rows(range(10))
        cube = ExplanationCube(relation, ["cat"], "m", aggregate="var")
        cache = RollupCache(tmp_path)
        key = cube_key(relation, "m", ["cat"], aggregate="var")
        cache.store(key, cube)
        loaded = cache.load(key)
        assert loaded is not None and loaded.appendable
        assert loaded.included_values.tobytes() == cube.included_values.tobytes()
        # ...and the revived cube keeps streaming, bit-identically.
        delta = day_rows([9, 10])
        loaded.append(delta)
        one_shot = ExplanationCube(
            relation.concat(delta), ["cat"], "m", aggregate="var"
        )
        assert loaded.included_values.tobytes() == one_shot.included_values.tobytes()
        assert loaded.excluded_values.tobytes() == one_shot.excluded_values.tobytes()

    def test_fixed_cubes_round_trip_without_a_ledger(self, tmp_path):
        relation = day_rows(range(6))
        cube = ExplanationCube(relation, ["cat"], "m", appendable=False)
        cache = RollupCache(tmp_path)
        key = cube_key(relation, "m", ["cat"])
        cache.store(key, cube)
        loaded = cache.load(key)
        assert loaded is not None and not loaded.appendable
        assert loaded.included_values.tobytes() == cube.included_values.tobytes()

    def test_chain_fingerprint_is_framed(self):
        assert chain_fingerprint("ab", "c") != chain_fingerprint("a", "bc")
        assert chain_fingerprint("x", "y") == chain_fingerprint("x", "y")

    def test_append_log_aligns_and_truncates(self, tmp_path):
        relation = day_rows(range(6))
        key = cube_key(relation, "m", ["cat"])
        log = AppendLog(tmp_path, key)
        assert log.align(0, "d1") is False  # first sighting
        assert AppendLog(tmp_path, key).align(0, "d1") is True  # replayed
        replay = AppendLog(tmp_path, key)
        assert replay.align(0, "d1") is True
        assert replay.align(1, "other") is False  # diverges, truncates
        assert replay.deltas == ("d1", "other")
        assert replay.fingerprint_at(2) == chain_fingerprint(
            chain_fingerprint(key.fingerprint, "d1"), "other"
        )

    def test_streamed_snapshots_are_stored_under_chained_keys(self, tmp_path):
        config = ExplainConfig(use_filter=False, k=2, cache_dir=str(tmp_path))
        explainer = StreamingExplainer(
            day_rows(range(12)), "m", ["cat"], config=config
        )
        explainer.refresh()
        delta = day_rows([12, 13])
        explainer.update(delta)
        base_key = cube_key(day_rows(range(12)), "m", ["cat"])
        snapshot_key = chained_key(
            base_key, chain_fingerprint(base_key.fingerprint, delta.fingerprint())
        )
        cache = RollupCache(tmp_path)
        snapshot = cache.load(snapshot_key)
        assert snapshot is not None
        assert snapshot.n_times == 14

    def test_replayed_stream_fast_forwards_from_the_cache(self, tmp_path):
        config = ExplainConfig(use_filter=False, k=2, cache_dir=str(tmp_path))
        base = day_rows(range(12))
        deltas = [day_rows([12, 13]), day_rows([14])]

        first = StreamingExplainer(base, "m", ["cat"], config=config)
        first.refresh()
        results = [first.update(delta) for delta in deltas]

        replay = StreamingExplainer(base, "m", ["cat"], config=config)
        replay.refresh()
        assert replay.session().cache_hit is True  # base loaded from disk
        replayed = [replay.update(delta) for delta in deltas]
        assert replay.session().cache_hit is True  # fast-forwarded snapshot
        assert [r.boundaries for r in replayed] == [r.boundaries for r in results]
        assert [
            repr(s.explanations[0].explanation)
            for r in replayed
            for s in r.segments
        ] == [
            repr(s.explanations[0].explanation)
            for r in results
            for s in r.segments
        ]

    def test_clear_removes_append_logs_too(self, tmp_path):
        relation = day_rows(range(6))
        key = cube_key(relation, "m", ["cat"])
        AppendLog(tmp_path, key).align(0, "d1")
        cache = RollupCache(tmp_path)
        cache.store(key, ExplanationCube(relation, ["cat"], "m"))
        assert cache.clear() == 2
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# StreamingExplainer modes
# ----------------------------------------------------------------------
class TestResegmentModes:
    def test_unknown_mode_is_rejected(self):
        with pytest.raises(QueryError, match="resegment"):
            StreamingExplainer(day_rows(range(6)), "m", ["cat"], resegment="???")

    def test_full_mode_update_is_byte_identical_to_refresh(self):
        config = ExplainConfig(use_filter=False)
        explainer = StreamingExplainer(
            day_rows(range(30), value=lambda t, cat: 3.0 + (t if cat == "a" else 0)),
            "m",
            ["cat"],
            config=config,
            resegment="full",
        )
        explainer.refresh()
        for days in ([30, 31], [32], [32, 33]):
            updated = explainer.update(
                day_rows(days, value=lambda t, cat: 40.0 if cat == "b" else 3.0)
            )
        rebuilt = StreamingExplainer(
            explainer.relation, "m", ["cat"], config=config
        ).refresh()
        assert updated.k == rebuilt.k
        assert updated.boundaries == rebuilt.boundaries
        assert [
            (s.start_label, s.stop_label, tuple((repr(e.explanation), e.gamma.hex(), e.tau) for e in s.explanations))
            for s in updated.segments
        ] == [
            (s.start_label, s.stop_label, tuple((repr(e.explanation), e.gamma.hex(), e.tau) for e in s.explanations))
            for s in rebuilt.segments
        ]


# ----------------------------------------------------------------------
# CLI --follow
# ----------------------------------------------------------------------
class TestFollowCli:
    def _write_rows(self, path, days, mode="a"):
        with open(path, mode, newline="") as handle:
            writer = csv.writer(handle)
            if mode == "w":
                writer.writerow(["day", "region", "revenue"])
            for day in days:
                for region in ("east", "west"):
                    value = 10.0 + (3.0 * day if region == "east" else 0.0)
                    writer.writerow([f"d{day:03d}", region, value])

    def test_follow_requires_a_csv_source(self, capsys):
        code = cli_main(["explain", "--dataset", "covid-total", "--follow"])
        assert code == 2
        assert "--follow requires --csv" in capsys.readouterr().err

    def test_follow_tails_appended_rows(self, tmp_path):
        path = str(tmp_path / "live.csv")
        self._write_rows(path, range(16), mode="w")

        def writer():
            for day in (16, 17):
                time.sleep(0.1)
                self._write_rows(path, [day])

        thread = threading.Thread(target=writer)
        thread.start()
        buffer = io.StringIO()
        try:
            with contextlib.redirect_stdout(buffer):
                code = cli_main(
                    [
                        "explain",
                        "--csv", path,
                        "--time", "day",
                        "--dimensions", "region",
                        "--measure", "revenue",
                        "--follow",
                        "--poll-interval", "0.05",
                        "--max-updates", "2",
                    ]
                )
        finally:
            thread.join()
        output = buffer.getvalue()
        assert code == 0
        assert "initial explanation (16 points)" in output
        assert "== update 2:" in output and "18 points" in output

    def test_follow_waits_for_header_and_first_rows(self, tmp_path):
        """tail -f semantics: an empty just-created file is waited on,
        not errored on."""
        path = str(tmp_path / "live.csv")
        open(path, "w").close()  # exists, but no header yet

        def writer():
            time.sleep(0.1)
            self._write_rows(path, [0], mode="w")  # header + one timestamp
            time.sleep(0.1)
            self._write_rows(path, [1])  # now two timestamps: first explain
            time.sleep(0.1)
            self._write_rows(path, [2])  # the followed update

        thread = threading.Thread(target=writer)
        thread.start()
        buffer = io.StringIO()
        try:
            with contextlib.redirect_stdout(buffer):
                code = cli_main(
                    [
                        "explain",
                        "--csv", path,
                        "--time", "day",
                        "--dimensions", "region",
                        "--measure", "revenue",
                        "--follow",
                        "--poll-interval", "0.05",
                        "--max-updates", "1",
                    ]
                )
        finally:
            thread.join()
        output = buffer.getvalue()
        assert code == 0
        assert "initial explanation (2 points)" in output
        assert "== update 1:" in output and "3 points" in output

    def test_follow_ignores_torn_trailing_lines(self, tmp_path):
        path = str(tmp_path / "live.csv")
        self._write_rows(path, range(12), mode="w")

        def writer():
            time.sleep(0.1)
            with open(path, "a", newline="") as handle:
                handle.write("d012,east,46.0\nd012,west,10")  # torn line
            time.sleep(0.15)
            with open(path, "a", newline="") as handle:
                handle.write(".0\n")  # completed on the next write

        thread = threading.Thread(target=writer)
        thread.start()
        buffer = io.StringIO()
        try:
            with contextlib.redirect_stdout(buffer):
                code = cli_main(
                    [
                        "explain",
                        "--csv", path,
                        "--time", "day",
                        "--dimensions", "region",
                        "--measure", "revenue",
                        "--follow",
                        "--poll-interval", "0.05",
                        "--max-updates", "2",
                    ]
                )
        finally:
            thread.join()
        assert code == 0
        assert "13 points" in buffer.getvalue()
