"""Unit tests for difference metrics and change effects."""

import numpy as np
import pytest

from repro.diff.metrics import (
    AbsoluteChange,
    RelativeChange,
    RiskRatio,
    available_metrics,
    change_effect,
    get_metric,
)
from repro.exceptions import ExplanationError


def test_registry():
    assert set(available_metrics()) == {"absolute-change", "relative-change", "risk-ratio"}
    with pytest.raises(ExplanationError):
        get_metric("other")


def test_absolute_change_is_abs():
    scores = AbsoluteChange().score(np.asarray([-3.0, 2.0, 0.0]), 10.0)
    assert scores.tolist() == [3.0, 2.0, 0.0]


def test_relative_change_normalizes_by_overall():
    scores = RelativeChange().score(np.asarray([5.0, -2.5]), -10.0)
    assert scores.tolist() == [0.5, 0.25]


def test_relative_change_zero_overall_safe():
    scores = RelativeChange().score(np.asarray([1.0]), 0.0)
    assert np.isfinite(scores).all()


def test_relative_change_broadcasts_arrays():
    contributions = np.asarray([[2.0, 3.0], [4.0, 6.0]])
    overall = np.asarray([2.0, 3.0])
    scores = RelativeChange().score(contributions, overall[None, :])
    assert np.allclose(scores, [[1.0, 1.0], [2.0, 2.0]])


def test_risk_ratio_slice_vs_rest():
    # overall change 10, slice contributes 8 -> rest changed by 2 -> ratio 4.
    scores = RiskRatio().score(np.asarray([8.0]), 10.0)
    assert scores[0] == pytest.approx(4.0)


def test_risk_ratio_rest_zero_safe():
    scores = RiskRatio().score(np.asarray([10.0]), 10.0)
    assert np.isfinite(scores).all()
    assert scores[0] > 1e6  # essentially infinite dominance


def test_change_effect_signs():
    assert change_effect(np.asarray([-2.0, 0.0, 5.0])).tolist() == [-1.0, 0.0, 1.0]


def test_all_metrics_nonnegative():
    contributions = np.linspace(-5, 5, 11)
    for name in available_metrics():
        scores = get_metric(name).score(contributions, 3.0)
        assert (scores >= 0).all(), name
