"""Tests for explain-by attribute recommendation (section 9 future work)."""

import numpy as np
import pytest

from repro.core.recommend import recommend_explain_by
from repro.exceptions import QueryError
from tests.conftest import build_relation


def mixed_relation(n=40):
    """'driver' explains the changes; 'shard' is a uniform partition;
    'noise_id' is a high-cardinality attribute uncorrelated with change."""
    rng = np.random.default_rng(0)
    rows = {"t": [], "driver": [], "shard": [], "noise_id": [], "v": []}
    for t in range(n):
        for driver in ("up", "flat"):
            for shard in ("s1", "s2"):
                rows["t"].append(f"t{t:03d}")
                rows["driver"].append(driver)
                rows["shard"].append(shard)
                rows["noise_id"].append(f"id{rng.integers(0, 30):02d}")
                value = 5.0 + (3.0 * t if driver == "up" else 0.0)
                rows["v"].append(value / 2.0)  # split evenly across shards
    return build_relation(
        rows,
        dimensions=["driver", "shard", "noise_id"],
        measures=["v"],
        time="t",
    )


def test_driver_ranked_first():
    scores = recommend_explain_by(mixed_relation(), "v")
    assert scores[0].attribute == "driver"


def test_uniform_shard_has_low_concentration():
    scores = {s.attribute: s for s in recommend_explain_by(mixed_relation(), "v")}
    # Both shards move identically: top-1 explains only ~half the change.
    assert scores["shard"].concentration < 0.7
    assert scores["driver"].concentration > 0.9


def test_scores_sorted_descending():
    scores = recommend_explain_by(mixed_relation(), "v")
    values = [s.score for s in scores]
    assert values == sorted(values, reverse=True)


def test_coverage_bounds():
    for score in recommend_explain_by(mixed_relation(), "v"):
        assert 0.0 <= score.coverage <= 1.0
        assert 0.0 <= score.concentration <= 1.0
        assert score.cardinality >= 1


def test_candidates_subset():
    scores = recommend_explain_by(mixed_relation(), "v", candidates=["shard"])
    assert [s.attribute for s in scores] == ["shard"]


def test_no_candidates_rejected():
    relation = mixed_relation().project(["t", "v"])
    with pytest.raises(QueryError):
        recommend_explain_by(relation, "v")


def test_row_rendering():
    score = recommend_explain_by(mixed_relation(), "v")[0]
    assert "coverage=" in score.row()
