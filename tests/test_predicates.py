"""Unit tests for predicates and canonical conjunctions."""

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.relation.predicates import (
    And,
    Between,
    Conjunction,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Not,
    Or,
)
from tests.conftest import build_relation


@pytest.fixture
def relation():
    return build_relation(
        {
            "cat": ["a", "b", "a", "c"],
            "x": [1.0, 2.0, 3.0, 4.0],
        },
        dimensions=["cat"],
        measures=["x"],
    )


def test_eq_mask(relation):
    assert Eq("cat", "a").mask(relation).tolist() == [True, False, True, False]


def test_in_mask(relation):
    assert In("cat", {"a", "c"}).mask(relation).tolist() == [True, False, True, True]


def test_comparisons(relation):
    assert Gt("x", 2.0).mask(relation).tolist() == [False, False, True, True]
    assert Ge("x", 2.0).mask(relation).tolist() == [False, True, True, True]
    assert Lt("x", 2.0).mask(relation).tolist() == [True, False, False, False]
    assert Le("x", 2.0).mask(relation).tolist() == [True, True, False, False]


def test_between_and_reversed_bounds(relation):
    assert Between("x", 2.0, 3.0).mask(relation).tolist() == [False, True, True, False]
    with pytest.raises(QueryError):
        Between("x", 3.0, 2.0)


def test_boolean_combinators(relation):
    predicate = (Eq("cat", "a") & Gt("x", 2.0)) | Eq("cat", "c")
    assert predicate.mask(relation).tolist() == [False, False, True, True]
    assert Not(Eq("cat", "a")).mask(relation).tolist() == [False, True, False, True]
    assert (~Eq("cat", "a")).mask(relation).tolist() == [False, True, False, True]


def test_and_or_require_terms():
    with pytest.raises(QueryError):
        And([])
    with pytest.raises(QueryError):
        Or([])


def test_conjunction_canonical_order_and_hash():
    left = Conjunction([Eq("b", 2), Eq("a", 1)])
    right = Conjunction.from_items([("a", 1), ("b", 2)])
    assert left == right
    assert hash(left) == hash(right)
    assert left.items == (("a", 1), ("b", 2))
    assert left.order == 2


def test_conjunction_repeated_attribute_rejected():
    with pytest.raises(QueryError):
        Conjunction([Eq("a", 1), Eq("a", 2)])


def test_conjunction_mask_and_empty(relation):
    conj = Conjunction([Eq("cat", "a")])
    assert conj.mask(relation).tolist() == [True, False, True, False]
    empty = Conjunction(())
    assert empty.mask(relation).all()
    assert empty.order == 0
    assert repr(empty) == "TRUE"


def test_conjunction_contains_and_extend():
    base = Conjunction.from_items([("a", 1)])
    extended = base.extend("b", 2)
    assert extended.contains(base)
    assert not base.contains(extended)
    assert extended.value_of("b") == 2
    with pytest.raises(QueryError):
        base.value_of("zz")


def test_predicate_attributes():
    conj = Conjunction.from_items([("b", 2), ("a", 1)])
    assert conj.attributes() == ("a", "b")
    assert And([Eq("x", 1), Eq("y", 2)]).attributes() == ("x", "y")
