"""Unit tests for group-by execution."""

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.relation.groupby import aggregate_over_time, group_by
from repro.relation.schema import Schema
from repro.relation.table import Relation
from tests.conftest import build_relation


@pytest.fixture
def relation():
    return build_relation(
        {
            "t": ["d1", "d1", "d2", "d2", "d2"],
            "cat": ["a", "b", "a", "b", "b"],
            "v": [1.0, 2.0, 3.0, 4.0, 6.0],
        },
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )


def test_group_by_single_key(relation):
    out = group_by(relation, ["cat"], {"total": ("sum", "v")})
    rows = {row["cat"]: row["total"] for row in out.to_rows()}
    assert rows == {"a": 4.0, "b": 12.0}


def test_group_by_multiple_keys_and_aggregates(relation):
    out = group_by(
        relation,
        ["t", "cat"],
        {"total": ("sum", "v"), "n": ("count", "v"), "mean": ("avg", "v")},
    )
    rows = {(row["t"], row["cat"]): row for row in out.to_rows()}
    assert rows[("d2", "b")]["total"] == 10.0
    assert rows[("d2", "b")]["n"] == 2.0
    assert rows[("d2", "b")]["mean"] == 5.0
    assert len(rows) == 4


def test_group_by_requires_keys(relation):
    with pytest.raises(QueryError):
        group_by(relation, [], {"total": ("sum", "v")})


def test_aggregate_over_time_sum(relation):
    series = aggregate_over_time(relation, "v", "sum")
    assert series.labels == ("d1", "d2")
    assert series.values.tolist() == [3.0, 13.0]


def test_aggregate_over_time_avg(relation):
    series = aggregate_over_time(relation, "v", "avg")
    assert series.values.tolist() == [1.5, pytest.approx(13.0 / 3)]


def test_aggregate_over_time_orders_labels():
    relation = build_relation(
        {"t": ["d2", "d1"], "cat": ["a", "a"], "v": [5.0, 1.0]},
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )
    series = aggregate_over_time(relation, "v")
    assert series.labels == ("d1", "d2")
    assert series.values.tolist() == [1.0, 5.0]


def test_aggregate_over_time_empty_rejected():
    schema = Schema.build(dimensions=["cat"], measures=["v"], time="t")
    with pytest.raises(QueryError):
        aggregate_over_time(Relation.empty(schema), "v")


def test_aggregate_over_time_validates_measure(relation):
    from repro.exceptions import SchemaError

    with pytest.raises(SchemaError):
        aggregate_over_time(relation, "cat")
