"""Tests for the mmap-able finalized-cube artifact (repro.cube.artifact)."""

import numpy as np
import pytest

from repro.cube.artifact import (
    ARTIFACT_SUFFIX,
    artifact_path_for,
    open_artifact,
    write_artifact,
)
from repro.cube.cache import RollupCache, cube_key
from repro.cube.datacube import ExplanationCube
from tests.conftest import regime_relation, two_attr_relation


@pytest.fixture
def cube():
    relation = two_attr_relation()
    return ExplanationCube(relation, ["a", "b"], "m"), relation


def _arrays_identical(left: ExplanationCube, right: ExplanationCube) -> bool:
    return (
        left.explanations == right.explanations
        and left.labels == right.labels
        and left.explain_by == right.explain_by
        and left.aggregate.name == right.aggregate.name
        and left.measure == right.measure
        and left.supports.tobytes() == right.supports.tobytes()
        and left.overall_values.tobytes() == right.overall_values.tobytes()
        and left.included_values.tobytes() == right.included_values.tobytes()
        and left.excluded_values.tobytes() == right.excluded_values.tobytes()
    )


def test_round_trip_is_byte_identical(tmp_path, cube):
    built, relation = cube
    key = cube_key(relation, "m", ["a", "b"])
    path = write_artifact(tmp_path, key, built)
    assert path == artifact_path_for(tmp_path, key)
    assert path.name.endswith(ARTIFACT_SUFFIX)
    reopened = open_artifact(tmp_path, key)
    assert reopened is not None
    assert _arrays_identical(built, reopened)


def test_open_memory_maps_the_series(tmp_path, cube):
    built, relation = cube
    key = cube_key(relation, "m", ["a", "b"])
    write_artifact(tmp_path, key, built)
    reopened = open_artifact(tmp_path, key)
    # The whole point of the artifact: N processes opening it share one
    # page-cache copy instead of N private heap copies.
    assert isinstance(reopened.included_values, np.memmap)
    assert isinstance(reopened.excluded_values, np.memmap)


def test_open_without_mmap_returns_private_arrays(tmp_path, cube):
    built, relation = cube
    key = cube_key(relation, "m", ["a", "b"])
    write_artifact(tmp_path, key, built)
    reopened = open_artifact(tmp_path, key, mmap=False)
    assert not isinstance(reopened.included_values, np.memmap)
    assert _arrays_identical(built, reopened)


def test_missing_and_wrong_key_are_misses(tmp_path, cube):
    built, relation = cube
    key = cube_key(relation, "m", ["a", "b"])
    assert open_artifact(tmp_path, key) is None
    write_artifact(tmp_path, key, built)
    other = cube_key(relation, "m", ["a"])
    assert open_artifact(tmp_path, other) is None


def test_corrupted_artifact_is_a_miss(tmp_path, cube):
    built, relation = cube
    key = cube_key(relation, "m", ["a", "b"])
    path = write_artifact(tmp_path, key, built)
    path.write_bytes(b"\x00" * 64)
    assert open_artifact(tmp_path, key) is None


def test_appendable_revival_matches_rebuild(tmp_path):
    base = regime_relation(n=24)  # 3 rows per time point, ordered by time
    head = base.head(16 * 3)
    tail = base.take(np.arange(base.n_rows) >= 16 * 3)
    streaming = ExplanationCube(head, ["cat"], "sales", appendable=True)
    key = cube_key(head, "sales", ["cat"])
    write_artifact(tmp_path, key, streaming)

    revived = open_artifact(tmp_path, key, appendable=True)
    assert revived is not None and revived.appendable
    revived.append(tail)
    full = ExplanationCube(base, ["cat"], "sales")
    assert revived.included_values.tobytes() == full.included_values.tobytes()
    assert revived.excluded_values.tobytes() == full.excluded_values.tobytes()

    # A finalized (non-appendable) open of the same artifact still works.
    finalized = open_artifact(tmp_path, key)
    assert finalized is not None and not finalized.appendable


def test_finalized_artifact_has_no_appendable_state(tmp_path):
    relation = two_attr_relation()
    built = ExplanationCube(relation, ["a", "b"], "m", appendable=False)
    key = cube_key(relation, "m", ["a", "b"])
    write_artifact(tmp_path, key, built)
    assert open_artifact(tmp_path, key, appendable=True) is None
    assert open_artifact(tmp_path, key) is not None


def test_write_leaves_no_temp_files(tmp_path, cube):
    built, relation = cube
    key = cube_key(relation, "m", ["a", "b"])
    write_artifact(tmp_path, key, built)
    write_artifact(tmp_path, key, built)  # overwrite is atomic too
    leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
    assert leftovers == []
    assert open_artifact(tmp_path, key) is not None


def test_cache_delegation_and_clear(tmp_path, cube):
    built, relation = cube
    cache = RollupCache(tmp_path / "rollups")
    key = cube_key(relation, "m", ["a", "b"])
    assert cache.load_artifact(key) is None
    cache.store_artifact(key, built)
    assert cache.artifact_path_for(key).exists()
    reopened = cache.load_artifact(key)
    assert reopened is not None
    assert _arrays_identical(built, reopened)
    # Artifacts do not masquerade as cache entries...
    cache.store(key, built)
    assert len(cache.entries()) == 1
    # ...but clear() sweeps both.
    cache.clear()
    assert cache.load_artifact(key) is None
    assert cache.entries() == []
