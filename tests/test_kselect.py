"""Tests for elbow-based K selection (section 6)."""

import pytest

from repro.exceptions import SegmentationError
from repro.segmentation.kselect import MAX_SEGMENTS, elbow_point, k_variance_curve


def test_sharp_elbow_detected():
    ks = list(range(1, 11))
    # Steep drop until K=4, flat afterwards.
    costs = [100.0, 60.0, 30.0, 5.0, 4.5, 4.0, 3.6, 3.3, 3.1, 3.0]
    assert elbow_point(ks, costs) == 4


def test_elbow_on_convex_decreasing_curve():
    ks = list(range(1, 21))
    costs = [100.0 / k for k in ks]
    chosen = elbow_point(ks, costs)
    assert 2 <= chosen <= 6  # knee of 1/k in the unit square


def test_constant_curve_falls_back_to_smallest_k():
    assert elbow_point([1, 2, 3], [5.0, 5.0, 5.0]) == 1


def test_short_curves():
    assert elbow_point([3], [1.0]) == 3
    assert elbow_point([2, 5], [9.0, 1.0]) == 2


def test_validation():
    with pytest.raises(SegmentationError):
        elbow_point([], [])
    with pytest.raises(SegmentationError):
        elbow_point([1, 2], [1.0])


def test_k_variance_curve_extraction():
    class FakeScheme:
        def __init__(self, k, cost):
            self.k = k
            self.total_cost = cost

    ks, costs = k_variance_curve([FakeScheme(1, 9.0), FakeScheme(2, 4.0)])
    assert ks == [1, 2]
    assert costs == [9.0, 4.0]


def test_max_segments_paper_value():
    assert MAX_SEGMENTS == 20
