"""Cross-module property-based tests on end-to-end invariants.

These generate random relations and check invariants that must hold for
*any* input: decomposition identities in the cube, non-overlap and
optimality of the CA selection, bounds of the NDCG distance, optimality of
the segmentation DP against exhaustive search, and agreement between the
vectorized cost path and the reference distance implementation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ca.bruteforce import is_non_overlapping
from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.cube.datacube import ExplanationCube
from repro.diff.scorer import SegmentScorer
from repro.segmentation.bruteforce import exhaustive_best_segmentation
from repro.segmentation.distance import explanation_distance
from repro.segmentation.dp import solve_k_segmentation
from repro.segmentation.variance import SegmentationCosts
from repro.relation.schema import Schema
from repro.relation.table import Relation


@st.composite
def small_relations(draw):
    """Random relations: 4-10 time points, 2-3 categories, 1-2 attributes."""
    n_times = draw(st.integers(4, 10))
    n_cats = draw(st.integers(2, 3))
    two_attrs = draw(st.booleans())
    values = draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False),
            min_size=n_times * n_cats * (2 if two_attrs else 1),
            max_size=n_times * n_cats * (2 if two_attrs else 1),
        )
    )
    rows = {"t": [], "a": [], "m": []}
    if two_attrs:
        rows["b"] = []
    position = 0
    for t in range(n_times):
        for c in range(n_cats):
            for b in range(2 if two_attrs else 1):
                rows["t"].append(f"t{t:02d}")
                rows["a"].append(f"a{c}")
                if two_attrs:
                    rows["b"].append(f"b{b}")
                rows["m"].append(values[position])
                position += 1
    dimensions = ["a", "b"] if two_attrs else ["a"]
    schema = Schema.build(dimensions=dimensions, measures=["m"], time="t")
    return Relation(rows, schema), dimensions


@settings(max_examples=25, deadline=None)
@given(data=small_relations())
def test_cube_decomposition_invariant(data):
    """included + excluded == overall for every candidate (SUM cubes)."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    for index in range(cube.n_explanations):
        np.testing.assert_allclose(
            cube.included_values[index] + cube.excluded_values[index],
            cube.overall_values,
            rtol=1e-9,
            atol=1e-6,
        )


@settings(max_examples=25, deadline=None)
@given(data=small_relations(), start_frac=st.floats(0, 0.8), m=st.integers(1, 4))
def test_ca_selection_invariants(data, start_frac, m):
    """CA output: non-overlapping, at most m, gammas sorted, total consistent."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    n = cube.n_times
    start = min(int(start_frac * (n - 1)), n - 2)
    stop = n - 1
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=m)
    result = solver.solve(scorer.gamma(start, stop))
    assert len(result.indices) <= m
    assert list(result.gammas) == sorted(result.gammas, reverse=True)
    assert is_non_overlapping([cube.explanations[i] for i in result.indices])
    assert result.total == pytest.approx(sum(result.gammas), abs=1e-9)
    # Best is monotone and the selection achieves Best[m].
    assert all(b <= a + 1e-9 for b, a in zip(result.best, result.best[1:]))


@settings(max_examples=15, deadline=None)
@given(data=small_relations())
def test_distance_bounds_and_symmetry(data):
    """dist in [0,1]; tse symmetric; self-distance 0."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    costs = SegmentationCosts(scorer, solver)
    n = cube.n_times
    seg_i, seg_j = (0, n // 2), (n // 2, n - 1)
    if seg_i[1] == seg_i[0] or seg_j[1] == seg_j[0]:
        return
    res_i = costs.segment_result(*seg_i)
    res_j = costs.segment_result(*seg_j)
    d_ij = explanation_distance(scorer, seg_i, seg_j, res_i, res_j, "tse")
    d_ji = explanation_distance(scorer, seg_j, seg_i, res_j, res_i, "tse")
    assert 0.0 <= d_ij <= 1.0
    assert d_ij == pytest.approx(d_ji, abs=1e-12)
    assert explanation_distance(scorer, seg_i, seg_i, res_i, res_i, "tse") == pytest.approx(0.0)


@settings(max_examples=15, deadline=None)
@given(data=small_relations(), k=st.integers(1, 4))
def test_dp_optimal_on_real_costs(data, k):
    """The Eq. 11 DP matches exhaustive search on real variance costs."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    costs = SegmentationCosts(scorer, solver)
    k = min(k, costs.n_points - 1)
    schemes = solve_k_segmentation(costs.cost_matrix, k_max=k)
    scheme = next(s for s in schemes if s.k == k)
    _, best = exhaustive_best_segmentation(costs.cost_matrix, k)
    assert scheme.total_cost == pytest.approx(best, abs=1e-9)
    assert costs.total_cost(scheme.boundaries) == pytest.approx(best, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(data=small_relations())
def test_pipeline_segments_tile_the_series(data):
    """End-to-end: segments partition [0, n-1]; K matches; labels align."""
    relation, dimensions = data
    result = ExplainPipeline(
        relation,
        "m",
        dimensions,
        config=ExplainConfig(use_filter=False, k_max=5),
    ).run()
    boundaries = result.boundaries
    assert boundaries[0] == 0
    assert boundaries[-1] == len(result.series) - 1
    assert list(boundaries) == sorted(set(boundaries))
    assert result.k == len(result.segments)
    for segment in result.segments:
        assert segment.start_label == result.series.label_at(segment.start)
        assert segment.variance >= -1e-12
    curve = list(result.k_variance_curve.values())
    assert all(v >= -1e-9 for v in curve)


@settings(max_examples=10, deadline=None)
@given(data=small_relations(), k=st.integers(2, 3))
def test_more_segments_never_increase_total_variance(data, k):
    """On real costs D(n, K+1) <= D(n, K) (the K-variance curve decreases)."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    costs = SegmentationCosts(scorer, solver)
    k = min(k, costs.n_points - 2)
    if k < 1:
        return
    schemes = {s.k: s for s in solve_k_segmentation(costs.cost_matrix, k_max=k + 1)}
    if k in schemes and k + 1 in schemes:
        # Splitting a segment removes its objects' distances to a centroid
        # and re-measures them against closer centroids; on unit-cost-0
        # diagonals this can only help or tie.  Allow float slack.
        assert schemes[k + 1].total_cost <= schemes[k].total_cost + 1e-6
