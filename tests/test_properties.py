"""Cross-module property-based tests on end-to-end invariants.

These generate random relations and check invariants that must hold for
*any* input: decomposition identities in the cube, non-overlap and
optimality of the CA selection, bounds of the NDCG distance, optimality of
the segmentation DP against exhaustive search, and agreement between the
vectorized cost path and the reference distance implementation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ca.bruteforce import is_non_overlapping
from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.core.smoothing import smooth_cube
from repro.cube.datacube import ExplanationCube, merge_cubes
from repro.diff.scorer import SegmentScorer
from repro.segmentation.bruteforce import exhaustive_best_segmentation
from repro.segmentation.distance import explanation_distance
from repro.segmentation.dp import solve_k_segmentation
from repro.segmentation.variance import SegmentationCosts
from repro.relation.schema import Schema
from repro.relation.table import Relation


@st.composite
def small_relations(draw):
    """Random relations: 4-10 time points, 2-3 categories, 1-2 attributes."""
    n_times = draw(st.integers(4, 10))
    n_cats = draw(st.integers(2, 3))
    two_attrs = draw(st.booleans())
    values = draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False),
            min_size=n_times * n_cats * (2 if two_attrs else 1),
            max_size=n_times * n_cats * (2 if two_attrs else 1),
        )
    )
    rows = {"t": [], "a": [], "m": []}
    if two_attrs:
        rows["b"] = []
    position = 0
    for t in range(n_times):
        for c in range(n_cats):
            for b in range(2 if two_attrs else 1):
                rows["t"].append(f"t{t:02d}")
                rows["a"].append(f"a{c}")
                if two_attrs:
                    rows["b"].append(f"b{b}")
                rows["m"].append(values[position])
                position += 1
    dimensions = ["a", "b"] if two_attrs else ["a"]
    schema = Schema.build(dimensions=dimensions, measures=["m"], time="t")
    return Relation(rows, schema), dimensions


@settings(max_examples=25, deadline=None)
@given(data=small_relations())
def test_cube_decomposition_invariant(data):
    """included + excluded == overall for every candidate (SUM cubes)."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    for index in range(cube.n_explanations):
        np.testing.assert_allclose(
            cube.included_values[index] + cube.excluded_values[index],
            cube.overall_values,
            rtol=1e-9,
            atol=1e-6,
        )


@settings(max_examples=25, deadline=None)
@given(data=small_relations(), start_frac=st.floats(0, 0.8), m=st.integers(1, 4))
def test_ca_selection_invariants(data, start_frac, m):
    """CA output: non-overlapping, at most m, gammas sorted, total consistent."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    n = cube.n_times
    start = min(int(start_frac * (n - 1)), n - 2)
    stop = n - 1
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=m)
    result = solver.solve(scorer.gamma(start, stop))
    assert len(result.indices) <= m
    assert list(result.gammas) == sorted(result.gammas, reverse=True)
    assert is_non_overlapping([cube.explanations[i] for i in result.indices])
    assert result.total == pytest.approx(sum(result.gammas), abs=1e-9)
    # Best is monotone and the selection achieves Best[m].
    assert all(b <= a + 1e-9 for b, a in zip(result.best, result.best[1:]))


@settings(max_examples=15, deadline=None)
@given(data=small_relations())
def test_distance_bounds_and_symmetry(data):
    """dist in [0,1]; tse symmetric; self-distance 0."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    costs = SegmentationCosts(scorer, solver)
    n = cube.n_times
    seg_i, seg_j = (0, n // 2), (n // 2, n - 1)
    if seg_i[1] == seg_i[0] or seg_j[1] == seg_j[0]:
        return
    res_i = costs.segment_result(*seg_i)
    res_j = costs.segment_result(*seg_j)
    d_ij = explanation_distance(scorer, seg_i, seg_j, res_i, res_j, "tse")
    d_ji = explanation_distance(scorer, seg_j, seg_i, res_j, res_i, "tse")
    assert 0.0 <= d_ij <= 1.0
    assert d_ij == pytest.approx(d_ji, abs=1e-12)
    assert explanation_distance(scorer, seg_i, seg_i, res_i, res_i, "tse") == pytest.approx(0.0)


@settings(max_examples=15, deadline=None)
@given(data=small_relations(), k=st.integers(1, 4))
def test_dp_optimal_on_real_costs(data, k):
    """The Eq. 11 DP matches exhaustive search on real variance costs."""
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    costs = SegmentationCosts(scorer, solver)
    k = min(k, costs.n_points - 1)
    schemes = solve_k_segmentation(costs.cost_matrix, k_max=k)
    scheme = next(s for s in schemes if s.k == k)
    _, best = exhaustive_best_segmentation(costs.cost_matrix, k)
    assert scheme.total_cost == pytest.approx(best, abs=1e-9)
    assert costs.total_cost(scheme.boundaries) == pytest.approx(best, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(data=small_relations())
def test_pipeline_segments_tile_the_series(data):
    """End-to-end: segments partition [0, n-1]; K matches; labels align."""
    relation, dimensions = data
    result = ExplainPipeline(
        relation,
        "m",
        dimensions,
        config=ExplainConfig(use_filter=False, k_max=5),
    ).run()
    boundaries = result.boundaries
    assert boundaries[0] == 0
    assert boundaries[-1] == len(result.series) - 1
    assert list(boundaries) == sorted(set(boundaries))
    assert result.k == len(result.segments)
    for segment in result.segments:
        assert segment.start_label == result.series.label_at(segment.start)
        assert segment.variance >= -1e-12
    curve = list(result.k_variance_curve.values())
    assert all(v >= -1e-9 for v in curve)


# ----------------------------------------------------------------------
# Append equivalence: build-then-append is byte-identical to one-shot
# ----------------------------------------------------------------------
@st.composite
def streaming_relations(draw):
    """Random relations with ragged per-timestamp rows and late-only values.

    Unlike :func:`small_relations`, rows are *not* a dense grid: each
    timestamp draws its own category multiset, later timestamps may
    introduce brand-new categories (so appends can grow the candidate
    set), and a random split point divides the rows into base + delta —
    possibly mid-timestamp, so deltas can revisit the base's last labels.
    """
    n_times = draw(st.integers(3, 8))
    n_cats = draw(st.integers(2, 4))
    late_cat = draw(st.booleans())
    two_attrs = draw(st.booleans())
    rows = {"t": [], "a": [], "m": []}
    if two_attrs:
        rows["b"] = []
    for t in range(n_times):
        cats = list(range(n_cats)) + draw(
            st.lists(st.integers(0, n_cats - 1), max_size=2)
        )
        if late_cat and t >= n_times // 2:
            cats.append(n_cats + 7)  # appears only late in the stream
        for cat in cats:
            rows["t"].append(f"t{t:02d}")
            rows["a"].append(f"a{cat}")
            if two_attrs:
                rows["b"].append(f"b{draw(st.integers(0, 1))}")
            rows["m"].append(draw(st.floats(-50.0, 50.0, allow_nan=False)))
    dimensions = ["a", "b"] if two_attrs else ["a"]
    schema = Schema.build(dimensions=dimensions, measures=["m"], time="t")
    relation = Relation(rows, schema)
    split = draw(st.integers(0, relation.n_rows))
    return relation, dimensions, split


def _split_rows(relation, split):
    base = relation.take(np.arange(split))
    delta = relation.take(np.arange(split, relation.n_rows))
    return base, delta


def _assert_cubes_byte_identical(left, right):
    assert left.labels == right.labels
    assert left.explanations == right.explanations
    assert left.supports.tobytes() == right.supports.tobytes()
    assert left.overall_values.tobytes() == right.overall_values.tobytes()
    assert left.included_values.tobytes() == right.included_values.tobytes()
    assert left.excluded_values.tobytes() == right.excluded_values.tobytes()


@settings(max_examples=40, deadline=None)
@given(
    data=streaming_relations(),
    aggregate=st.sampled_from(["sum", "count", "avg", "var"]),
    smoothing=st.sampled_from([None, 3]),
)
def test_append_is_byte_identical_to_one_shot_build(data, aggregate, smoothing):
    """build(base) + append(delta) == build(base + delta), bit for bit.

    Covers SUM/COUNT/AVG/VAR, smoothing on/off, empty deltas (split at the
    end), whole-stream deltas (split at 0 — the base still has to span two
    timestamps), mid-timestamp splits, and candidate growth.
    """
    relation, dimensions, split = data
    base, delta = _split_rows(relation, split)
    if len(set(base.column("t"))) < 2:
        return  # a cube needs at least one base timestamp pair
    appended = ExplanationCube(base, dimensions, "m", aggregate=aggregate, max_order=2)
    appended.append(delta)
    one_shot = ExplanationCube(
        relation, dimensions, "m", aggregate=aggregate, max_order=2
    )
    _assert_cubes_byte_identical(appended, one_shot)
    if smoothing is not None and appended.n_times > 1:
        _assert_cubes_byte_identical(
            smooth_cube(appended, smoothing), smooth_cube(one_shot, smoothing)
        )


@settings(max_examples=25, deadline=None)
@given(data=streaming_relations(), aggregate=st.sampled_from(["sum", "var"]))
def test_chunked_appends_match_single_append(data, aggregate):
    """Appending row-by-row equals appending everything at once."""
    relation, dimensions, split = data
    base, delta = _split_rows(relation, split)
    if len(set(base.column("t"))) < 2 or delta.n_rows == 0:
        return
    chunked = ExplanationCube(base, dimensions, "m", aggregate=aggregate, max_order=2)
    for row in range(delta.n_rows):
        chunked.append(delta.take(np.asarray([row])))
    one_shot = ExplanationCube(
        relation, dimensions, "m", aggregate=aggregate, max_order=2
    )
    _assert_cubes_byte_identical(chunked, one_shot)


@settings(max_examples=20, deadline=None)
@given(data=streaming_relations(), aggregate=st.sampled_from(["sum", "avg"]))
def test_merge_cubes_matches_one_shot_on_time_shards(data, aggregate):
    """Merging cubes of time-disjoint shards equals the one-shot build."""
    relation, dimensions, _ = data
    positions, labels = relation.time_positions(None)
    if len(labels) < 4:
        return
    cut = len(labels) // 2
    left = relation.take(positions < cut)
    right = relation.take(positions >= cut)
    if len(set(right.column("t"))) < 1:
        return
    merged = merge_cubes(
        ExplanationCube(left, dimensions, "m", aggregate=aggregate, max_order=2),
        ExplanationCube(right, dimensions, "m", aggregate=aggregate, max_order=2),
    )
    one_shot = ExplanationCube(
        relation, dimensions, "m", aggregate=aggregate, max_order=2
    )
    _assert_cubes_byte_identical(merged, one_shot)


@settings(max_examples=25, deadline=None)
@given(
    data=streaming_relations(),
    aggregate=st.sampled_from(["sum", "count", "avg", "var"]),
    n_shards=st.integers(1, 4),
)
def test_sharded_build_is_byte_identical_to_one_shot(data, aggregate, n_shards):
    """The serving tier's sharded cold build == the one-shot build, bit for bit.

    Time-partitioned shards feed disjoint ``(group, time)`` buckets, so
    splitting into any number of shards, building each shard's cube
    independently, and merging with ``merge_shard_cubes`` must reproduce
    the exact bytes (candidate order, series arrays, supports) of a
    single build over the whole relation — the property the
    :class:`repro.serve.sharding.ShardedBuilder` relies on.
    """
    from repro.cube.datacube import merge_shard_cubes
    from repro.serve.sharding import split_time_shards

    relation, dimensions, _ = data
    shards = split_time_shards(relation, None, n_shards)
    merged = merge_shard_cubes(
        [
            ExplanationCube(shard, dimensions, "m", aggregate=aggregate, max_order=2)
            for shard in shards
        ]
    )
    one_shot = ExplanationCube(
        relation, dimensions, "m", aggregate=aggregate, max_order=2
    )
    _assert_cubes_byte_identical(merged, one_shot)


@settings(max_examples=10, deadline=None)
@given(data=small_relations(), k=st.integers(2, 3))
def test_optimal_k_plus_1_beats_every_single_split_refinement(data, k):
    """D(n, K+1) <= cost of any single-split refinement of the optimal K.

    This is the invariant DP optimality actually guarantees.  The
    stronger folklore claim — D(n, K+1) <= D(n, K) outright — is *false*
    for explanation-aware costs: splitting a segment re-selects each
    part's top-m explanations, which can re-rank unit distances and
    raise the summed cost (hypothesis found an 18-row counterexample
    exceeding the curve by 0.03).  The elbow selection only needs the
    curve, not its monotonicity.
    """
    relation, dimensions = data
    cube = ExplanationCube(relation, dimensions, "m", max_order=2)
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    costs = SegmentationCosts(scorer, solver)
    k = min(k, costs.n_points - 2)
    if k < 1:
        return
    matrix = costs.cost_matrix
    schemes = {s.k: s for s in solve_k_segmentation(matrix, k_max=k + 1)}
    if k not in schemes or k + 1 not in schemes:
        return
    base = schemes[k]
    refinements = [
        base.total_cost - matrix[left, right] + matrix[left, cut] + matrix[cut, right]
        for left, right in zip(base.boundaries, base.boundaries[1:])
        for cut in range(left + 1, right)
    ]
    if refinements:
        assert schemes[k + 1].total_cost <= min(refinements) + 1e-9


# ----------------------------------------------------------------------
# Storage layer: cross-backend round trips and the out-of-core build
# ----------------------------------------------------------------------
_cell_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\x00"
    ),
    max_size=6,
)


@st.composite
def csv_policy_relations(draw):
    """Random relations in the CSV dtype policy (object text, float64).

    This is the domain every storage backend round-trips exactly: text
    dimension/time cells (arbitrary printable content, including commas,
    quotes and newlines) and finite float64 measures.
    """
    from repro.relation.schema import Schema

    n_rows = draw(st.integers(0, 16))
    times = draw(st.lists(_cell_text, min_size=n_rows, max_size=n_rows))
    cats = draw(st.lists(_cell_text, min_size=n_rows, max_size=n_rows))
    values = draw(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    # + 0.0 normalizes -0.0 (identity for every other float): SQLite's
    # record format stores integral REALs as integers, which erases the
    # sign of negative zero — the one documented lossy cell (see
    # repro.store.sqlite_source.write_sqlite).
    values = [value + 0.0 for value in values]
    schema = Schema.build(dimensions=["cat"], measures=["v"], time="t")
    columns = {
        "t": np.asarray(times, dtype=object),
        "cat": np.asarray(cats, dtype=object),
        "v": np.asarray(values, dtype=np.float64),
    }
    return Relation(columns, schema)


@settings(max_examples=40, deadline=None)
@given(relation=csv_policy_relations())
def test_source_round_trips_preserve_fingerprint(relation):
    """csv -> npz -> sqlite round trips yield identical fingerprints.

    `Relation.fingerprint` keys the rollup cache, so a backend that
    changed a single cell, the row order, or a dtype would silently split
    (or worse, poison) the cache.
    """
    import tempfile
    from pathlib import Path

    from repro.relation.csvio import read_csv, write_csv
    from repro.store import CsvSource, NpzSource, SqliteSource, write_npz, write_sqlite

    expected = relation.fingerprint()
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        write_csv(relation, tmp / "r.csv")
        via_read_csv = read_csv(
            tmp / "r.csv", dimensions=["cat"], measures=["v"], time="t"
        )
        assert via_read_csv.fingerprint() == expected
        via_source = CsvSource(
            tmp / "r.csv", dimensions=["cat"], measures=["v"], time="t"
        ).read()
        assert via_source.fingerprint() == expected

        write_npz(relation, tmp / "r.npz")
        assert NpzSource(tmp / "r.npz").read().fingerprint() == expected

        write_sqlite(relation, tmp / "r.db", "t1")
        via_sqlite = SqliteSource(
            tmp / "r.db", "t1", dimensions=["cat"], measures=["v"], time="t"
        ).read()
        assert via_sqlite.fingerprint() == expected


# ----------------------------------------------------------------------
# Lattice equivalence: routing, derivation and the single-scan build
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    data=small_relations(),
    aggregate=st.sampled_from(["sum", "count", "avg", "var"]),
    smoothing=st.sampled_from([None, 3]),
    start_frac=st.floats(0, 0.6),
)
def test_lattice_routed_equals_direct_build(data, aggregate, smoothing, start_frac):
    """(a) Every lattice-routed cube is byte-identical to a one-shot
    build, and a routed session answers windowed (smoothed) queries
    exactly like a session that never saw the lattice."""
    from repro.core.session import ExplainSession
    from repro.lattice import LatticeRouter, RollupSpec, build_lattice, default_lattice
    from repro.serve.jsonio import result_to_json

    relation, dimensions = data
    specs = default_lattice(dimensions, "m", aggregate=aggregate, max_order=2)
    cubes, _ = build_lattice(relation, specs)
    router = LatticeRouter.for_relation(relation)
    router.seed(cubes)
    for dims in [tuple(sorted(dimensions))] + [(d,) for d in dimensions]:
        routed, info = router.route(
            RollupSpec(dims=dims, measure="m", aggregate=aggregate, max_order=2)
        )
        assert info.decision in ("exact", "derived")
        _assert_cubes_byte_identical(
            routed,
            ExplanationCube(relation, dims, "m", aggregate=aggregate, max_order=2),
        )
    config = ExplainConfig(use_filter=False, k_max=4, max_order=2)
    if smoothing is not None:
        config = config.updated(smoothing_window=smoothing)
    routed_session = ExplainSession.from_lattice(
        router,
        relation=relation,
        measure="m",
        explain_by=dimensions,
        aggregate=aggregate,
        config=config,
    )
    assert routed_session.route_info.decision == "exact"
    direct_session = ExplainSession(
        relation, measure="m", explain_by=dimensions, aggregate=aggregate, config=config
    )
    labels = sorted(set(relation.column("t")))
    start = labels[min(int(start_frac * (len(labels) - 1)), len(labels) - 2)]
    routed_payload = result_to_json(routed_session.query().window(start, labels[-1]).run())
    direct_payload = result_to_json(direct_session.query().window(start, labels[-1]).run())
    routed_payload.pop("timings", None)  # wall clock is the one legit difference
    direct_payload.pop("timings", None)
    assert routed_payload == direct_payload


@settings(max_examples=15, deadline=None)
@given(
    data=streaming_relations(),
    target_agg=st.sampled_from(["sum", "count", "avg", "var"]),
)
def test_lattice_derivation_equals_scratch_build(data, target_agg):
    """(b) Re-aggregating a finer rollup's ledger into a coarser shape is
    byte-identical to building that shape from the relation."""
    from repro.lattice import RollupSpec, derive_rollup

    relation, dimensions, _ = data
    if len(dimensions) < 2:
        return  # nothing finer to derive from
    finest = ExplanationCube(
        relation, dimensions, "m", aggregate="var", max_order=2, appendable=True
    )
    for dims in [tuple(sorted(dimensions))] + [(d,) for d in dimensions]:
        target = RollupSpec(dims=dims, measure="m", aggregate=target_agg, max_order=2)
        derived = derive_rollup(finest, target)
        scratch = ExplanationCube(
            relation, dims, "m", aggregate=target_agg, max_order=2
        )
        _assert_cubes_byte_identical(derived, scratch)


@settings(max_examples=10, deadline=None)
@given(
    data=small_relations(),
    aggregate=st.sampled_from(["sum", "count", "avg", "var"]),
    chunk_rows=st.integers(1, 37),
)
def test_single_scan_lattice_equals_independent_builds(data, aggregate, chunk_rows):
    """(c) One chunked scan feeding every lattice rollup yields exactly
    the cubes N independent source builds would."""
    import tempfile
    from pathlib import Path

    from repro.lattice import build_lattice, default_lattice
    from repro.store import NpzSource, write_npz

    relation, dimensions = data
    specs = default_lattice(dimensions, "m", aggregate=aggregate, max_order=2)
    with tempfile.TemporaryDirectory() as tmp:
        write_npz(relation, Path(tmp) / "r.npz")
        source = NpzSource(Path(tmp) / "r.npz")
        cubes, report = build_lattice(source, specs, chunk_rows=chunk_rows)
        assert report.out_of_core
        assert set(cubes) == set(specs)
        independent = source.read()
        for one, cube in cubes.items():
            _assert_cubes_byte_identical(
                cube,
                ExplanationCube(
                    independent, one.dims, "m", aggregate=aggregate, max_order=2
                ),
            )


@settings(max_examples=20, deadline=None)
@given(
    data=small_relations(),
    aggregate=st.sampled_from(["sum", "count", "avg", "var"]),
    chunk_rows=st.integers(1, 37),
)
def test_out_of_core_build_is_byte_identical(data, aggregate, chunk_rows):
    """A chunked source build equals the one-shot cube, byte for byte."""
    import tempfile
    from pathlib import Path

    from repro.store import NpzSource, load_or_build_from_source, write_npz

    relation, dimensions = data
    with tempfile.TemporaryDirectory() as tmp:
        write_npz(relation, Path(tmp) / "r.npz")
        source = NpzSource(Path(tmp) / "r.npz")
        one_shot = ExplanationCube(
            source.read(), dimensions, "m", aggregate=aggregate, max_order=2
        )
        chunked, report = load_or_build_from_source(
            None,
            source,
            dimensions,
            "m",
            aggregate=aggregate,
            max_order=2,
            chunk_rows=chunk_rows,
        )
    assert report.out_of_core
    assert report.peak_chunk_rows <= chunk_rows
    assert chunked.explanations == one_shot.explanations
    assert chunked.labels == one_shot.labels
    np.testing.assert_array_equal(chunked.supports, one_shot.supports)
    np.testing.assert_array_equal(chunked.overall_values, one_shot.overall_values)
    np.testing.assert_array_equal(chunked.included_values, one_shot.included_values)
    np.testing.assert_array_equal(chunked.excluded_values, one_shot.excluded_values)


# ----------------------------------------------------------------------
# Detect tier: incremental baseline advance equals a one-shot rebuild
# ----------------------------------------------------------------------
def _assert_baselines_byte_identical(left, right):
    assert left.calendar_mode == right.calendar_mode
    assert left.tier.tobytes() == right.tier.tobytes()
    assert left.samples.tobytes() == right.samples.tobytes()
    assert left.mean.tobytes() == right.mean.tobytes()
    assert left.std.tobytes() == right.std.tobytes()


@settings(max_examples=30, deadline=None)
@given(
    data=streaming_relations(),
    aggregate=st.sampled_from(["sum", "count", "avg", "var"]),
    date_labels=st.booleans(),
    n_chunks=st.integers(1, 4),
)
def test_baseline_advance_is_byte_identical_to_one_shot(
    data, aggregate, date_labels, n_chunks
):
    """Chunked appends advance the baselines to the exact bytes a fresh
    build over ``base + delta`` produces — for SUM/COUNT/AVG/VAR, both
    calendar modes, mid-timestamp splits, and candidate growth.

    This is the invariant ``repro detect follow`` rides: scoring only the
    recomputed columns per poll tick loses nothing against rescanning.
    """
    from repro.detect import DetectConfig, TieredBaselines

    relation, dimensions, split = data
    if date_labels:
        # Remap tNN -> consecutive ISO dates so the day-of-week tiers
        # (not just the positional fallback) are exercised.
        import datetime

        first = datetime.date(2024, 1, 1)
        remap = {
            label: (first + datetime.timedelta(days=int(label[1:]))).isoformat()
            for label in set(relation.column("t"))
        }
        columns = relation.columns()
        columns["t"] = np.asarray(
            [remap[label] for label in relation.column("t")], dtype=object
        )
        relation = Relation(columns, relation.schema)
    base, delta = _split_rows(relation, split)
    if len(set(base.column("t"))) < 2:
        return
    config = DetectConfig(
        dow_windows=(14, 7), dow_min_samples=(2, 1), recency_window=3,
        recency_min_samples=1,
    )
    cube = ExplanationCube(base, dimensions, "m", aggregate=aggregate, max_order=2)
    advanced = TieredBaselines(cube, config)
    bounds = np.linspace(0, delta.n_rows, n_chunks + 1).astype(int)
    for lo, hi in zip(bounds, bounds[1:]):
        info = cube.append(delta.take(np.arange(lo, hi)))
        advanced.advance(info)
    one_shot = ExplanationCube(
        relation, dimensions, "m", aggregate=aggregate, max_order=2
    )
    fresh = TieredBaselines(one_shot, config)
    assert advanced.calendar_mode == ("date" if date_labels else "positional")
    _assert_baselines_byte_identical(advanced, fresh)
