"""Unit tests for candidate-explanation enumeration and deduplication."""

import pytest

from repro.cube.explanations import enumerate_candidates
from repro.exceptions import ExplanationError
from repro.relation.predicates import Conjunction
from tests.conftest import build_relation


@pytest.fixture
def relation():
    # b is determined by a for value x (hierarchy): (a=x -> b=p).
    return build_relation(
        {
            "t": ["d1"] * 4,
            "a": ["x", "x", "y", "y"],
            "b": ["p", "p", "p", "q"],
            "m": [1.0, 2.0, 3.0, 4.0],
        },
        dimensions=["a", "b"],
        measures=["m"],
        time="t",
    )


def test_order_one_candidates(relation):
    candidates = enumerate_candidates(relation, ["a"], max_order=1)
    assert set(candidates.explanations) == {
        Conjunction.from_items([("a", "x")]),
        Conjunction.from_items([("a", "y")]),
    }
    supports = dict(zip(candidates.explanations, candidates.supports))
    assert supports[Conjunction.from_items([("a", "x")])] == 2


def test_order_two_with_dedup(relation):
    candidates = enumerate_candidates(relation, ["a", "b"], max_order=2)
    explanations = set(candidates.explanations)
    # (a=x & b=p) selects exactly the rows of (a=x): redundant, dropped.
    assert Conjunction.from_items([("a", "x"), ("b", "p")]) not in explanations
    # (a=y & b=q) selects exactly the rows of (b=q): redundant, dropped.
    assert Conjunction.from_items([("a", "y"), ("b", "q")]) not in explanations
    # (a=y & b=p) is a strict refinement of both parents: kept.
    assert Conjunction.from_items([("a", "y"), ("b", "p")]) in explanations


def test_dedup_disabled_keeps_everything(relation):
    candidates = enumerate_candidates(relation, ["a", "b"], max_order=2, deduplicate=False)
    assert Conjunction.from_items([("a", "x"), ("b", "p")]) in set(candidates.explanations)


def test_dedup_chains_through_dropped_intermediates():
    # c is constant, so every conjunction with c=only is redundant through
    # a chain: (a & c) ~ (a), and (a & b & c) ~ (a & b).
    relation = build_relation(
        {
            "t": ["d1"] * 4,
            "a": ["x", "x", "y", "y"],
            "b": ["p", "q", "p", "q"],
            "c": ["k", "k", "k", "k"],
            "m": [1.0, 1.0, 1.0, 1.0],
        },
        dimensions=["a", "b", "c"],
        measures=["m"],
        time="t",
    )
    candidates = enumerate_candidates(relation, ["a", "b", "c"], max_order=3)
    for conjunction in candidates.explanations:
        assert "c" not in conjunction.attributes() or conjunction.order == 1, conjunction


def test_max_order_caps_at_attribute_count(relation):
    candidates = enumerate_candidates(relation, ["a"], max_order=3)
    assert all(c.order == 1 for c in candidates.explanations)


def test_invalid_inputs(relation):
    with pytest.raises(ExplanationError):
        enumerate_candidates(relation, [])
    with pytest.raises(ExplanationError):
        enumerate_candidates(relation, ["a", "a"])
    with pytest.raises(ExplanationError):
        enumerate_candidates(relation, ["a"], max_order=0)


def test_supports_count_rows(relation):
    candidates = enumerate_candidates(relation, ["a", "b"], max_order=2)
    lookup = dict(zip(candidates.explanations, candidates.supports))
    assert lookup[Conjunction.from_items([("b", "p")])] == 3
    assert lookup[Conjunction.from_items([("a", "y"), ("b", "p")])] == 1


def test_deterministic_order(relation):
    first = enumerate_candidates(relation, ["a", "b"], max_order=2)
    second = enumerate_candidates(relation, ["a", "b"], max_order=2)
    assert first.explanations == second.explanations
