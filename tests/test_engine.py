"""Tests for the TSExplain facade."""

import pytest

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.exceptions import ConfigError, QueryError
from repro.relation.predicates import Conjunction
from tests.conftest import regime_relation


@pytest.fixture
def engine():
    return TSExplain(
        regime_relation(),
        measure="sales",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    )


def test_explain_full_series(engine):
    result = engine.explain()
    assert result.cuts == (12,)
    assert engine.last_result is result


def test_config_overrides_via_kwargs():
    engine = TSExplain(
        regime_relation(), measure="sales", explain_by=["cat"], k=3, use_filter=False
    )
    assert engine.config.k == 3
    engine = TSExplain(
        regime_relation(),
        measure="sales",
        config=ExplainConfig(use_filter=False),
        k=2,
    )
    assert engine.config.k == 2 and not engine.config.use_filter


def test_invalid_override_rejected():
    with pytest.raises(ConfigError):
        TSExplain(regime_relation(), measure="sales", m=0)


def test_explain_by_defaults_to_dimensions():
    engine = TSExplain(regime_relation(), measure="sales", use_filter=False, k=2)
    result = engine.explain()
    assert result.segments[0].explanations[0].explanation.attributes() == ("cat",)


def test_windowed_explain(engine):
    result = engine.explain(start="t006", stop="t018")
    assert result.series.label_at(0) == "t006"
    assert len(result.series) == 13
    # The regime switch at t012 is inside the window and must be found.
    labels = result.cut_labels
    assert "t012" in labels


def test_window_validation(engine):
    with pytest.raises(QueryError):
        engine.explain(start="t010", stop="t010")


def test_series_accessor(engine):
    series = engine.series()
    assert len(series) == 24
    assert series.values[0] == 27.0  # 10 + 10 + 7


def test_top_explanations_two_point_diff(engine):
    top = engine.top_explanations("t000", "t011", m=2)
    assert top[0].explanation == Conjunction.from_items([("cat", "a")])
    assert top[0].tau == 1
    assert top[0].gamma == pytest.approx(44.0)
    assert len(top) <= 2


def test_top_explanations_order_validation(engine):
    with pytest.raises(QueryError):
        engine.top_explanations("t011", "t000")
