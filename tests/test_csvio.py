"""Unit tests for CSV input/output."""

import pytest

from repro.exceptions import SchemaError
from repro.relation.csvio import read_csv, write_csv
from tests.conftest import build_relation


def test_round_trip(tmp_path):
    relation = build_relation(
        {"t": ["d1", "d2"], "cat": ["a", "b"], "v": [1.5, 2.5]},
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )
    path = tmp_path / "data.csv"
    write_csv(relation, path)
    loaded = read_csv(path, dimensions=["cat"], measures=["v"], time="t")
    assert loaded.n_rows == 2
    assert loaded.column("v").tolist() == [1.5, 2.5]
    assert list(loaded.column("cat")) == ["a", "b"]


def test_missing_column_raises(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(SchemaError):
        read_csv(path, dimensions=["zz"], measures=["a"])


def test_extra_csv_columns_dropped(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b,c\nx,2,3\ny,4,5\n")
    relation = read_csv(path, dimensions=["a"], measures=["b"])
    assert relation.schema.names == ("a", "b")
    assert relation.column("b").tolist() == [2.0, 4.0]
