"""Unit tests for CSV input/output."""

import pytest

from repro.exceptions import SchemaError
from repro.relation.csvio import read_csv, write_csv
from tests.conftest import build_relation


def test_round_trip(tmp_path):
    relation = build_relation(
        {"t": ["d1", "d2"], "cat": ["a", "b"], "v": [1.5, 2.5]},
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )
    path = tmp_path / "data.csv"
    write_csv(relation, path)
    loaded = read_csv(path, dimensions=["cat"], measures=["v"], time="t")
    assert loaded.n_rows == 2
    assert loaded.column("v").tolist() == [1.5, 2.5]
    assert list(loaded.column("cat")) == ["a", "b"]


def test_missing_column_raises(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(SchemaError):
        read_csv(path, dimensions=["zz"], measures=["a"])


def test_extra_csv_columns_dropped(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b,c\nx,2,3\ny,4,5\n")
    relation = read_csv(path, dimensions=["a"], measures=["b"])
    assert relation.schema.names == ("a", "b")
    assert relation.column("b").tolist() == [2.0, 4.0]


def test_non_numeric_measure_cell_names_column_and_value(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("t,cat,v\nd1,a,1.5\nd2,b,oops\n")
    with pytest.raises(SchemaError) as excinfo:
        read_csv(path, dimensions=["cat"], measures=["v"], time="t")
    assert "'v'" in str(excinfo.value)
    assert "'oops'" in str(excinfo.value)


def test_ragged_row_raises(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b\nx,2\ny\n")
    with pytest.raises(SchemaError, match="row 3"):
        read_csv(path, dimensions=["a"], measures=["b"])


def test_empty_file_reports_missing_columns(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError, match="lacks columns"):
        read_csv(path, dimensions=["a"], measures=["b"])


def test_header_only_file_loads_zero_rows(tmp_path):
    path = tmp_path / "header.csv"
    path.write_text("t,cat,v\n")
    relation = read_csv(path, dimensions=["cat"], measures=["v"], time="t")
    assert relation.n_rows == 0
    assert relation.column("v").dtype == "float64"


def test_quoted_fields_round_trip(tmp_path):
    relation = build_relation(
        {
            "t": ["d1", "d2"],
            "cat": ['with,comma', 'with "quote"\nand newline'],
            "v": [1.25, -0.0],
        },
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )
    path = tmp_path / "tricky.csv"
    write_csv(relation, path)
    loaded = read_csv(path, dimensions=["cat"], measures=["v"], time="t")
    assert list(loaded.column("cat")) == list(relation.column("cat"))
    assert loaded.column("v").tolist() == [1.25, -0.0]


def test_duplicate_needed_header_rejected(tmp_path):
    path = tmp_path / "dup.csv"
    path.write_text("t,v,v\nd1,1,2\n")
    with pytest.raises(SchemaError, match="repeats"):
        read_csv(path, measures=["v"], time="t")
    # Duplicates among *dropped* columns stay harmless.
    path.write_text("t,x,x,v\nd1,a,b,2\n")
    relation = read_csv(path, measures=["v"], time="t")
    assert relation.column("v").tolist() == [2.0]
