"""End-to-end integration tests across the whole system."""

import numpy as np
import pytest

from repro import ExplainConfig, TSExplain
from repro.baselines import BottomUpSegmenter
from repro.datasets import generate_synthetic, load_dataset
from repro.evaluation import distance_percent, time_baseline, time_tsexplain


def explain_synthetic(data, config):
    ds = data.dataset
    engine = TSExplain(ds.relation, measure=ds.measure, explain_by=ds.explain_by, config=config)
    return engine.explain()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_recovers_ground_truth_on_clean_synthetic(seed):
    """SNR 50: TSExplain's output should be (almost) exactly ground truth."""
    data = generate_synthetic(seed, 50)
    result = explain_synthetic(data, ExplainConfig.vanilla(k=data.k))
    assert distance_percent(result.boundaries, data.boundaries, 100) < 1.0


def test_beats_bottomup_on_explanation_driven_change():
    """A regime change invisible in the aggregate shape: only TSExplain sees it.

    Two categories swap roles at t=30 while the aggregate stays a straight
    line; visual baselines cannot place the cut, the explanation-aware
    objective can.
    """
    from tests.conftest import build_relation

    n = 60
    rows = {"t": [], "cat": [], "v": []}
    for t in range(n):
        growth = 5.0 * t
        rows["t"].append(f"t{t:03d}")
        rows["cat"].append("a")
        rows["v"].append(10.0 + (growth if t < 30 else 150.0))
        rows["t"].append(f"t{t:03d}")
        rows["cat"].append("b")
        rows["v"].append(10.0 + (0.0 if t < 30 else growth - 150.0))
    relation = build_relation(rows, dimensions=["cat"], measures=["v"], time="t")
    engine = TSExplain(relation, measure="v", explain_by=["cat"], config=ExplainConfig.vanilla(k=2))
    result = engine.explain()
    assert result.cuts == (30,)
    # The aggregate is a perfect line; Bottom-Up has no information at all.
    aggregate = engine.series().values
    assert np.allclose(np.diff(aggregate), np.diff(aggregate)[0])


def test_optimizations_preserve_quality_synthetic():
    data = generate_synthetic(3, 45)
    vanilla = explain_synthetic(data, ExplainConfig.vanilla(k=data.k))
    optimized = explain_synthetic(data, ExplainConfig.optimized(k=data.k))
    d_vanilla = distance_percent(vanilla.boundaries, data.boundaries, 100)
    d_optimized = distance_percent(optimized.boundaries, data.boundaries, 100)
    assert d_optimized <= d_vanilla + 2.0  # small quality budget


def test_covid_deaths_story():
    """Figure 18: vaccinated=NO drives the first period, 50+ the wave."""
    ds = load_dataset("covid-deaths")
    result = TSExplain(
        ds.relation, measure=ds.measure, explain_by=ds.explain_by
    ).explain()
    first = repr(result.segments[0].explanations[0].explanation)
    assert first == "vaccinated=NO"
    later_tops = [repr(s.explanations[0].explanation) for s in result.segments[1:]]
    assert any("age_group=50+" in top for top in later_tops)


def test_latency_helpers_run():
    data = generate_synthetic(0, 40)
    report = time_tsexplain(data.dataset, ExplainConfig.vanilla(k=3), "vanilla")
    assert report.total > 0
    assert "vanilla" in report.row()
    baseline = time_baseline(data.dataset, BottomUpSegmenter(), k=3)
    assert baseline.total >= 0
    assert "Bottom-Up" in baseline.row()


def test_sp500_crash_story():
    """Technology and financials lead the crash segment (Table 4)."""
    ds = load_dataset("sp500")
    engine = TSExplain(
        ds.relation,
        measure=ds.measure,
        explain_by=ds.explain_by,
        config=ExplainConfig.optimized(k=4),
    )
    result = engine.explain()
    # Find the segment with the largest drop: the crash.
    drops = [
        result.series.values[s.stop] - result.series.values[s.start]
        for s in result.segments
    ]
    crash = result.segments[int(np.argmin(drops))]
    tops = [repr(s.explanation) for s in crash.explanations]
    assert any("technology" in t for t in tops)
    assert all(s.tau == -1 for s in crash.explanations[:2])
