"""Tests for the matrix-profile substrate."""

import numpy as np
import pytest

from repro.baselines.matrix_profile import compute_matrix_profile
from repro.exceptions import SegmentationError


def znorm(window: np.ndarray) -> np.ndarray:
    std = window.std()
    if std < 1e-12:
        return np.zeros_like(window)
    return (window - window.mean()) / std


def brute_force_profile(values: np.ndarray, window: int):
    n_sub = len(values) - window + 1
    exclusion = max(1, window // 2)
    profile = np.full(n_sub, np.inf)
    indices = np.zeros(n_sub, dtype=int)
    for i in range(n_sub):
        for j in range(n_sub):
            if abs(i - j) <= exclusion:
                continue
            d = np.linalg.norm(znorm(values[i : i + window]) - znorm(values[j : j + window]))
            if d < profile[i]:
                profile[i] = d
                indices[i] = j
    return profile, indices


@pytest.mark.parametrize("window", [4, 8, 13])
def test_matches_brute_force(window, rng):
    values = rng.normal(size=60)
    mp = compute_matrix_profile(values, window)
    expected_profile, _ = brute_force_profile(values, window)
    assert np.allclose(mp.profile, expected_profile, atol=1e-8)


def test_indices_point_to_nearest_neighbour(rng):
    values = rng.normal(size=50)
    window = 6
    mp = compute_matrix_profile(values, window)
    for i in range(mp.n_subsequences):
        j = mp.indices[i]
        d = np.linalg.norm(znorm(values[i : i + window]) - znorm(values[j : j + window]))
        assert d == pytest.approx(mp.profile[i], abs=1e-8)
        assert abs(i - j) > window // 2


def test_periodic_signal_has_small_profile():
    values = np.sin(np.arange(300) / 7.0)
    mp = compute_matrix_profile(values, 30)
    assert mp.profile.max() < 0.5


def test_constant_regions_are_zero_distance():
    values = np.concatenate([np.zeros(30), np.ones(30)])
    mp = compute_matrix_profile(values, 5)
    # Constant windows exist on both sides; they match each other exactly.
    assert mp.profile.min() == pytest.approx(0.0)


def test_validation():
    with pytest.raises(SegmentationError):
        compute_matrix_profile(np.zeros(10), 1)
    with pytest.raises(SegmentationError):
        compute_matrix_profile(np.zeros(5), 5)
    with pytest.raises(SegmentationError):
        compute_matrix_profile(np.zeros((3, 3)), 2)
