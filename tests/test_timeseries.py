"""Unit tests for TimeSeries."""

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.relation.timeseries import TimeSeries


def test_construction_and_access():
    ts = TimeSeries([1.0, 2.0, 4.0], ["a", "b", "c"])
    assert len(ts) == 3
    assert ts[1] == 2.0
    assert ts.label_at(2) == "c"
    assert ts.position_of("b") == 1


def test_default_integer_labels():
    ts = TimeSeries([5.0, 6.0])
    assert ts.labels == (0, 1)


def test_label_value_mismatch():
    with pytest.raises(QueryError):
        TimeSeries([1.0], ["a", "b"])


def test_duplicate_labels_rejected():
    with pytest.raises(QueryError):
        TimeSeries([1.0, 2.0], ["a", "a"])


def test_unknown_label():
    ts = TimeSeries([1.0], ["a"])
    with pytest.raises(QueryError):
        ts.position_of("zz")


def test_window_inclusive_bounds():
    ts = TimeSeries([1.0, 2.0, 3.0, 4.0], list("abcd"))
    window = ts.window(1, 2)
    assert window.values.tolist() == [2.0, 3.0]
    assert window.labels == ("b", "c")
    with pytest.raises(QueryError):
        ts.window(2, 1)
    with pytest.raises(QueryError):
        ts.window(0, 9)


def test_change_is_endpoint_difference():
    ts = TimeSeries([1.0, 5.0, 2.0])
    assert ts.change(0, 2) == 1.0


def test_arithmetic_alignment():
    left = TimeSeries([1.0, 2.0], ["a", "b"])
    right = TimeSeries([3.0, 5.0], ["a", "b"])
    assert (left + right).values.tolist() == [4.0, 7.0]
    assert (right - left).values.tolist() == [2.0, 3.0]
    assert left.scale(2.0).values.tolist() == [2.0, 4.0]
    misaligned = TimeSeries([0.0, 0.0], ["a", "zz"])
    with pytest.raises(QueryError):
        left + misaligned


def test_cumulative_diff_inverse():
    ts = TimeSeries([3.0, 1.0, 4.0, 1.0])
    assert np.allclose(ts.cumulative().diff().values, ts.values)


def test_from_pairs_and_equality():
    ts = TimeSeries.from_pairs([("a", 1.0), ("b", 2.0)])
    assert ts == TimeSeries([1.0, 2.0], ["a", "b"])
    assert ts != TimeSeries([1.0, 3.0], ["a", "b"])


def test_multidimensional_rejected():
    with pytest.raises(QueryError):
        TimeSeries(np.zeros((2, 2)))
