"""Tests for ExplainConfig validation and presets."""

import pytest

from repro.core.config import ExplainConfig
from repro.exceptions import ConfigError


def test_paper_defaults():
    config = ExplainConfig()
    assert config.m == 3
    assert config.max_order == 3
    assert config.metric == "absolute-change"
    assert config.variant == "tse"
    assert config.k is None
    assert config.k_max == 20
    assert config.use_filter
    assert config.filter_ratio == 0.001
    assert config.initial_guess == 30


@pytest.mark.parametrize(
    "kwargs",
    [
        {"m": 0},
        {"max_order": 0},
        {"variant": "bogus"},
        {"metric": "bogus"},
        {"metric": "absolute_change"},
        {"k": 0},
        {"k_max": 0},
        {"k": 21},
        {"filter_ratio": 1.5},
        {"filter_ratio": -0.1},
        {"initial_guess": 2},
        {"sketch_length": 1},
        {"sketch_size": 0},
        {"smoothing_window": 0},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ConfigError):
        ExplainConfig(**kwargs)


def test_presets_match_paper_configurations():
    assert not ExplainConfig.vanilla().use_filter
    assert ExplainConfig.with_filter().use_filter
    o1 = ExplainConfig.o1()
    assert o1.use_filter and o1.use_guess_verify and not o1.use_sketch
    o2 = ExplainConfig.o2()
    assert o2.use_filter and not o2.use_guess_verify and o2.use_sketch
    both = ExplainConfig.optimized()
    assert both.use_guess_verify and both.use_sketch


def test_known_metrics_accepted_case_insensitively():
    # A typo'd metric used to surface only deep inside SegmentScorer; now
    # it fails at construction, and every casing get_metric accepts passes.
    for name in ("absolute-change", "relative-change", "risk-ratio"):
        assert ExplainConfig(metric=name).metric == name
    assert ExplainConfig(metric="Absolute-Change").metric == "Absolute-Change"


def test_updated_returns_copy():
    base = ExplainConfig()
    changed = base.updated(k=5)
    assert changed.k == 5
    assert base.k is None


def test_preset_overrides():
    config = ExplainConfig.vanilla(m=2, k=4)
    assert config.m == 2 and config.k == 4 and not config.use_filter
