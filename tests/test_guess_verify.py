"""Unit and property tests for guess-and-verify (O1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.ca.guess_verify import GuessAndVerify
from repro.exceptions import ExplanationError
from repro.relation.predicates import Conjunction


def conj(**items) -> Conjunction:
    return Conjunction.from_items(sorted(items.items()))


def make_candidates(n_a: int, n_b: int) -> list[Conjunction]:
    out = [conj(A=a) for a in range(n_a)]
    out += [conj(B=b) for b in range(n_b)]
    out += [conj(A=a, B=b) for a in range(n_a) for b in range(n_b)]
    return out


def test_small_guess_still_optimal():
    candidates = make_candidates(4, 3)
    vanilla = CascadingAnalysts(DrillDownTree(candidates), m=3)
    o1 = GuessAndVerify(candidates, m=3, initial_guess=3)
    rng = np.random.default_rng(0)
    for _ in range(25):
        gamma = rng.uniform(0, 10, len(candidates))
        assert o1.solve(gamma).total == pytest.approx(vanilla.solve(gamma).total)


def test_adversarial_overlapping_prefix():
    """Top-2 by gamma overlap; the optimum needs a candidate ranked later."""
    candidates = [conj(A=0), conj(A=0, B=0), conj(A=1), conj(B=1)]
    gamma = np.asarray([10.0, 9.5, 1.0, 0.9])
    o1 = GuessAndVerify(candidates, m=2, initial_guess=2)
    vanilla = CascadingAnalysts(DrillDownTree(candidates), m=2)
    assert o1.solve(gamma).total == pytest.approx(vanilla.solve(gamma).total)
    # The initial guess {A=0, A=0&B=0} only supports one selection (they
    # overlap), so verification must have failed at least once.
    assert o1.iterations >= 2


def test_guess_covers_everything_immediately():
    candidates = make_candidates(2, 1)
    o1 = GuessAndVerify(candidates, m=3, initial_guess=30)
    gamma = np.linspace(1, 2, len(candidates))
    result = o1.solve(gamma)
    assert o1.iterations == 1
    assert len(result.indices) <= 3


def test_initial_guess_validation():
    with pytest.raises(ExplanationError):
        GuessAndVerify([conj(A=0)], m=3, initial_guess=2)


def test_gamma_length_validation():
    o1 = GuessAndVerify([conj(A=0)], m=1, initial_guess=1)
    with pytest.raises(ExplanationError):
        o1.solve(np.asarray([1.0, 2.0]))


def test_solve_batch_matches_loop():
    candidates = make_candidates(3, 2)
    o1 = GuessAndVerify(candidates, m=3, initial_guess=4)
    rng = np.random.default_rng(3)
    gammas = rng.uniform(0, 5, size=(6, len(candidates)))
    batch = o1.solve_batch(gammas)
    for row, result in enumerate(batch):
        again = o1.solve(gammas[row])
        assert result.indices == again.indices


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_guess_and_verify_always_matches_vanilla(data):
    candidates = make_candidates(data.draw(st.integers(2, 3)), data.draw(st.integers(1, 2)))
    gamma = np.asarray(
        data.draw(
            st.lists(
                st.floats(0, 50, allow_nan=False),
                min_size=len(candidates),
                max_size=len(candidates),
            )
        )
    )
    m = data.draw(st.integers(1, 3))
    guess = data.draw(st.integers(m, 6))
    o1 = GuessAndVerify(candidates, m=m, initial_guess=guess)
    vanilla = CascadingAnalysts(DrillDownTree(candidates), m=m)
    assert o1.solve(gamma).total == pytest.approx(vanilla.solve(gamma).total)
