"""Tests for the observability layer (repro.obs).

Covers the metrics registry (labeled counters/gauges/histograms, lost-
increment-free concurrency, bucket boundary semantics), the Prometheus
text exposition and its validating parser (round-trip), cross-process
snapshot persistence and merging (SnapshotStore, dead-pid filtering),
contextvar tracing (nesting, sampling, thread propagation, JSON-lines
export), structured logging (JsonFormatter, AccessLog, SlowQueryLog),
and the serve tier end-to-end: ``/metrics`` scrapes, the
``X-Repro-Trace-Id`` ↔ trace-export join, the slow-query log, and the
multi-worker merged scrape.
"""

from __future__ import annotations

import contextvars
import io
import json
import logging
import math
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import QueryError
from repro.obs.logging import AccessLog, JsonFormatter, SlowQueryLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SNAPSHOT_FORMAT,
    SnapshotStore,
    get_registry,
    merge_snapshots,
    parse_exposition,
    render_snapshot,
    set_registry,
)
from repro.obs.trace import (
    JsonLinesExporter,
    current_trace,
    current_trace_id,
    record_span,
    span,
    start_trace,
)
from tests.test_serve import _get_json


@pytest.fixture()
def fresh_registry():
    """Swap in an empty process-default registry for the test's duration.

    Keeps counts deterministic: every other test in the process records
    into the shared default registry, so exact-value assertions need a
    clean slate (and the restore keeps later tests unaffected).
    """
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# MetricsRegistry semantics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "hits", labels=("kind",))
        hits.inc(kind="a")
        hits.inc(2.5, kind="a")
        hits.inc(kind="b")
        assert hits.value(kind="a") == 3.5
        assert hits.value(kind="b") == 1.0
        depth = registry.gauge("depth")
        depth.set(4)
        depth.inc()
        depth.dec(2)
        assert depth.value() == 3.0

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        with pytest.raises(QueryError, match="cannot decrease"):
            counter.inc(-1)

    def test_families_are_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", labels=("endpoint",))
        second = registry.counter("requests_total", labels=("endpoint",))
        assert first is second

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(QueryError, match="already registered"):
            registry.gauge("x_total", labels=("a",))
        with pytest.raises(QueryError, match="already registered"):
            registry.counter("x_total", labels=("b",))
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(QueryError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_and_labels_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(QueryError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(QueryError, match="invalid label name"):
            registry.counter("ok_total", labels=("bad-label",))
        with pytest.raises(QueryError, match="buckets"):
            registry.histogram("h2", buckets=())

    def test_wrong_label_set_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("y_total", labels=("kind",))
        with pytest.raises(QueryError, match="takes labels"):
            counter.inc(other="z")

    def test_concurrent_increments_lose_nothing(self):
        """The satellite's concurrency pin: N threads hammering one
        registry must account for every single update."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", labels=("worker",))
        gauge = registry.gauge("hammer_depth")
        histogram = registry.histogram("hammer_seconds", buckets=(0.5, 1.0))
        n_threads, per_thread = 8, 500

        def hammer(worker: int) -> None:
            for i in range(per_thread):
                counter.inc(worker=str(worker % 2))
                gauge.inc()
                gauge.dec()
                histogram.observe(float(i % 3))

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == n_threads * per_thread
        assert gauge.value() == 0.0
        state = histogram.state()
        assert state["count"] == n_threads * per_thread
        assert sum(state["counts"]) == n_threads * per_thread


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        """``le`` is inclusive: an observation equal to a bound counts
        in that bound's bucket, not the next one up."""
        registry = MetricsRegistry()
        histogram = registry.histogram("b_seconds", buckets=(0.1, 0.5, 1.0))
        histogram.observe(0.1)
        histogram.observe(0.5)
        histogram.observe(1.0)
        state = histogram.state()
        assert state["counts"] == [1, 1, 1, 0]

    def test_beyond_last_bound_lands_in_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("c_seconds", buckets=(0.1, 0.5))
        histogram.observe(0.500001)
        histogram.observe(99.0)
        state = histogram.state()
        assert state["counts"] == [0, 0, 2]
        assert state["sum"] == pytest.approx(99.500001)
        assert state["count"] == 2

    def test_rendered_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("d_seconds", buckets=(0.1, 0.5, 1.0))
        for value in (0.05, 0.05, 0.3, 0.9, 5.0):
            histogram.observe(value)
        samples = parse_exposition(registry.render())
        assert samples[("d_seconds_bucket", (("le", "0.1"),))] == 2
        assert samples[("d_seconds_bucket", (("le", "0.5"),))] == 3
        assert samples[("d_seconds_bucket", (("le", "1"),))] == 4
        assert samples[("d_seconds_bucket", (("le", "+Inf"),))] == 5
        assert samples[("d_seconds_count", ())] == 5
        assert samples[("d_seconds_sum", ())] == pytest.approx(6.3)

    def test_default_buckets_are_request_scale(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ----------------------------------------------------------------------
# Exposition round-trip
# ----------------------------------------------------------------------
class TestExposition:
    def test_round_trip_parse_matches_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_total", "round trip", labels=("endpoint", "status"))
        counter.inc(3, endpoint="/explain", status="200")
        counter.inc(endpoint="/diff", status="400")
        gauge = registry.gauge("rt_depth")
        gauge.set(7)
        text = registry.render()
        assert "# HELP rt_total round trip" in text
        assert "# TYPE rt_total counter" in text
        samples = parse_exposition(text)
        key = ("rt_total", (("endpoint", "/explain"), ("status", "200")))
        assert samples[key] == 3
        assert samples[("rt_total", (("endpoint", "/diff"), ("status", "400")))] == 1
        assert samples[("rt_depth", ())] == 7

    def test_label_values_escape_and_unescape(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", labels=("path",))
        tricky = 'a"b\\c\nd'
        counter.inc(path=tricky)
        text = registry.render()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        samples = parse_exposition(text)
        assert samples[("esc_total", (("path", tricky),))] == 1

    def test_parser_rejects_sample_without_type(self):
        with pytest.raises(QueryError, match="no TYPE declaration"):
            parse_exposition("orphan_total 1\n")

    def test_parser_rejects_malformed_sample(self):
        with pytest.raises(QueryError, match="malformed sample"):
            parse_exposition("# TYPE x counter\nx{=} oops extra\n")

    def test_parser_rejects_unparsable_value(self):
        with pytest.raises(QueryError, match="unparsable value"):
            parse_exposition("# TYPE x counter\nx notanumber\n")

    def test_parser_rejects_duplicate_samples(self):
        with pytest.raises(QueryError, match="duplicate sample"):
            parse_exposition("# TYPE x counter\nx 1\nx 2\n")

    def test_parser_rejects_decreasing_histogram_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(QueryError, match="bucket counts decrease"):
            parse_exposition(text)

    def test_parser_handles_inf_values(self):
        samples = parse_exposition("# TYPE g gauge\ng +Inf\n")
        assert samples[("g", ())] == math.inf


# ----------------------------------------------------------------------
# Snapshots: merge and persistence
# ----------------------------------------------------------------------
class TestSnapshotMerge:
    def _worker_registry(self, requests: int, latency: float) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("m_requests_total", labels=("endpoint",)).inc(
            requests, endpoint="/explain"
        )
        registry.histogram("m_seconds", buckets=(0.1, 1.0)).observe(latency)
        registry.gauge("m_inflight").set(1)
        return registry

    def test_merge_sums_counters_gauges_and_histograms(self):
        a = self._worker_registry(3, 0.05)
        b = self._worker_registry(4, 0.5)
        merged = merge_snapshots([a.snapshot(worker="w0"), b.snapshot(worker="w1")])
        assert merged["worker"] == "merged"
        samples = parse_exposition(render_snapshot(merged))
        assert samples[("m_requests_total", (("endpoint", "/explain"),))] == 7
        assert samples[("m_inflight", ())] == 2
        assert samples[("m_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("m_seconds_bucket", (("le", "+Inf"),))] == 2
        assert samples[("m_seconds_count", ())] == 2

    def test_merge_skips_conflicting_family_shapes(self):
        a = MetricsRegistry()
        a.counter("shape_total").inc(5)
        b = MetricsRegistry()
        b.gauge("shape_total").set(100)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        samples = parse_exposition(render_snapshot(merged))
        # First spelling wins; the conflicting worker must not poison it.
        assert samples[("shape_total", ())] == 5

    def test_merge_skips_unknown_format(self):
        a = MetricsRegistry()
        a.counter("fmt_total").inc(1)
        stale = a.snapshot()
        stale["format"] = SNAPSHOT_FORMAT + 1
        merged = merge_snapshots([a.snapshot(), stale])
        samples = parse_exposition(render_snapshot(merged))
        assert samples[("fmt_total", ())] == 1

    def test_render_with_extra_snapshots(self):
        live = self._worker_registry(1, 0.05)
        other = self._worker_registry(9, 0.05)
        samples = parse_exposition(live.render(extra_snapshots=[other.snapshot()]))
        assert samples[("m_requests_total", (("endpoint", "/explain"),))] == 10


class TestSnapshotStore:
    def test_write_then_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "obs")
        registry = MetricsRegistry()
        registry.counter("s_total").inc(2)
        path = store.write(registry.snapshot(worker="w0"), "w0")
        assert path.name == "metrics-w0.json"
        loaded = store.load_all(alive=lambda pid: True)
        assert len(loaded) == 1
        assert loaded[0]["worker"] == "w0"
        assert loaded[0]["metrics"]["s_total"]["series"][0]["value"] == 2

    def test_worker_id_is_sanitized_into_filename(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.path_for("w/0:x").name == "metrics-w_0_x.json"

    def test_load_all_skips_corrupt_files(self, tmp_path):
        store = SnapshotStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("ok_total").inc(1)
        store.write(registry.snapshot(worker="good"), "good")
        (tmp_path / "metrics-bad.json").write_text("{ torn", encoding="utf-8")
        (tmp_path / "metrics-alien.json").write_text('{"hello": 1}', encoding="utf-8")
        loaded = store.load_all(alive=lambda pid: True)
        assert [snapshot["worker"] for snapshot in loaded] == ["good"]

    def test_load_all_drops_dead_writers(self, tmp_path):
        """A restarted worker must not be double-counted against the
        snapshot its dead predecessor left behind."""
        store = SnapshotStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("live_total").inc(1)
        dead = registry.snapshot(worker="ghost")
        dead["pid"] = 999_999_999
        store.write(dead, "ghost")
        store.write(registry.snapshot(worker="alive"), "alive")
        loaded = store.load_all(alive=lambda pid: pid != 999_999_999)
        assert [snapshot["worker"] for snapshot in loaded] == ["alive"]

    def test_delete(self, tmp_path):
        store = SnapshotStore(tmp_path)
        registry = MetricsRegistry()
        store.write(registry.snapshot(worker="w1"), "w1")
        assert store.delete("w1") is True
        assert store.delete("w1") is False
        assert store.load_all(alive=lambda pid: True) == []


def test_set_registry_swaps_the_process_default(fresh_registry):
    assert get_registry() is fresh_registry
    get_registry().counter("swap_total").inc()
    assert fresh_registry.counter("swap_total").value() == 1


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTrace:
    def test_spans_nest_into_a_tree(self):
        with start_trace("/explain") as trace:
            with span("prepare") as prepare:
                with span("cube-build") as build:
                    pass
            with span("score"):
                pass
        by_name = {s.name: s for s in trace.spans}
        assert by_name["/explain"].span_id == 0
        assert by_name["prepare"].parent_id == 0
        assert by_name["cube-build"].parent_id == prepare.span_id
        assert by_name["score"].parent_id == 0
        assert all(s.duration is not None for s in trace.spans)
        assert build.duration <= prepare.duration <= trace.duration_seconds

    def test_unsampled_trace_keeps_id_but_drops_spans(self):
        with start_trace("/explain", sampled=False) as trace:
            assert current_trace_id() == trace.trace_id
            with span("prepare") as entry:
                assert entry is None
            assert record_span("queue-wait", 0.1) is None
        assert len(trace.spans) == 1  # just the root
        assert len(trace.trace_id) == 16

    def test_span_is_noop_without_a_trace(self):
        assert current_trace() is None
        with span("orphan") as entry:
            assert entry is None
        assert record_span("orphan", 1.0) is None

    def test_record_span_attaches_premeasured_phase(self):
        with start_trace("/explain") as trace:
            time.sleep(0.01)
            attached = record_span("queue-wait", 0.005)
        assert attached.duration == 0.005
        assert attached.parent_id == 0
        assert attached.start >= 0.0

    def test_contextvars_carry_the_trace_into_pool_threads(self):
        """The scheduler's submit() copies its context so pool threads
        annotate the submitting request's trace; mimic that here."""
        with start_trace("/explain") as trace:
            context = contextvars.copy_context()

            def pool_work():
                with span("prepare"):
                    time.sleep(0.001)

            thread = threading.Thread(target=lambda: context.run(pool_work))
            thread.start()
            thread.join(timeout=10.0)
        names = [s.name for s in trace.spans]
        assert names == ["/explain", "prepare"]
        assert trace.spans[1].parent_id == 0

    def test_to_dict_rounds_and_labels_spans(self):
        with start_trace("/x") as trace:
            with span("a"):
                pass
        payload = trace.to_dict()
        assert payload["trace_id"] == trace.trace_id
        assert payload["name"] == "/x"
        assert payload["duration_ms"] >= 0
        assert [s["name"] for s in payload["spans"]] == ["/x", "a"]
        assert payload["spans"][1]["parent"] == 0

    def test_exporter_round_trip_skips_unsampled_and_torn_lines(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        exporter = JsonLinesExporter(path)
        with start_trace("/kept") as kept:
            pass
        with start_trace("/dropped", sampled=False) as dropped:
            pass
        assert exporter.export(kept) is True
        assert exporter.export(dropped) is False
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn\n')
        traces = JsonLinesExporter.read(path)
        assert [t["name"] for t in traces] == ["/kept"]
        assert traces[0]["trace_id"] == kept.trace_id

    def test_exporter_read_missing_file_is_empty(self, tmp_path):
        assert JsonLinesExporter.read(tmp_path / "absent.jsonl") == []


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_json_formatter_inlines_extras(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",), None
        )
        record.dataset = "covid-total"
        record.latency_ms = 12.5
        record.weird = object()
        payload = json.loads(JsonFormatter().format(record))
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["dataset"] == "covid-total"
        assert payload["latency_ms"] == 12.5
        assert payload["weird"].startswith("<object object")

    def test_access_log_writes_one_json_line(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream)
        log.log("GET", "/explain", 200, 12.345, dataset="covid-total", trace_id="abc123")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["message"] == "GET /explain 200"
        assert payload["status"] == 200
        assert payload["latency_ms"] == 12.345
        assert payload["trace_id"] == "abc123"

    def test_access_logs_do_not_cross_instances(self):
        """Two apps in one process must not duplicate each other's lines
        (the reason AccessLog avoids logging.getLogger)."""
        first_stream, second_stream = io.StringIO(), io.StringIO()
        AccessLog(stream=first_stream).log("GET", "/a", 200, 1.0)
        AccessLog(stream=second_stream).log("GET", "/b", 200, 1.0)
        assert len(first_stream.getvalue().strip().splitlines()) == 1
        assert len(second_stream.getvalue().strip().splitlines()) == 1

    def test_slow_query_log_applies_threshold(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(10.0, path=path)
        assert log.observe("/explain", 9.9) is False
        assert log.observe("/explain", 10.0, dataset="d", trace_id="t1", status=200)
        entries = SlowQueryLog.read(path)
        assert len(entries) == 1
        assert entries[0]["latency_ms"] == 10.0
        assert entries[0]["threshold_ms"] == 10.0
        assert entries[0]["trace_id"] == "t1"

    def test_slow_query_log_stream_mode(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.0, stream=stream)
        assert log.observe("/diff", 5.0) is True
        assert json.loads(stream.getvalue())["path"] == "/diff"


# ----------------------------------------------------------------------
# Serve-tier integration
# ----------------------------------------------------------------------
class TestServeObservability:
    def test_scrape_trace_join_and_slow_log(self, tmp_path, fresh_registry):
        """One app, the whole surface: a request's trace header joins
        against the exported span tree, phase durations sum to within the
        recorded latency, the scrape is well-formed and covers every
        instrumented layer, and the seeded slow query carries the id."""
        from repro.serve.http import make_app

        app = make_app(
            datasets=["covid-total"],
            port=0,
            cache_dir=str(tmp_path / "cache"),
            artifacts=True,
            access_log=False,
            slow_query_ms=0.0,  # threshold 0 → every request is "slow"
            worker_id="t0",
        ).start()
        try:
            request = urllib.request.Request(f"{app.url}/explain?dataset=covid-total")
            with urllib.request.urlopen(request) as response:
                trace_id = response.headers["X-Repro-Trace-Id"]
                assert json.loads(response.read())["segments"]
            assert trace_id and len(trace_id) == 16
            _get_json(f"{app.url}/detect?dataset=covid-total")
            _get_json(f"{app.url}/healthz")
            with pytest.raises(urllib.error.HTTPError, match="404"):
                _get_json(f"{app.url}/does-not-exist")

            # --- trace export joins on the response header -------------
            traces = JsonLinesExporter.read(app.trace_export_path)
            matching = [t for t in traces if t["trace_id"] == trace_id]
            assert len(matching) == 1
            trace = matching[0]
            names = {s["name"] for s in trace["spans"]}
            assert "/explain" in names
            assert "queue-wait" in names
            assert "prepare" in names
            # Cold prepare went through the artifact path and the cube
            # build under the prepare span.
            assert {"artifact-load", "cube-build"} & names

            # Direct children of the root partition the request's time:
            # their durations must sum to within the recorded latency.
            slow_entries = SlowQueryLog.read(app.slow_query_log.path)
            recorded = [e for e in slow_entries if e["trace_id"] == trace_id]
            assert len(recorded) == 1
            children_ms = sum(
                s["duration_ms"]
                for s in trace["spans"]
                if s["parent"] == 0 and s["duration_ms"] is not None
            )
            assert children_ms <= recorded[0]["latency_ms"] + 2.0
            assert trace["duration_ms"] <= recorded[0]["latency_ms"] + 2.0
            # Every slow-log entry joins back to a trace id.
            assert all(e["trace_id"] for e in slow_entries)

            # --- /metrics scrape ---------------------------------------
            with urllib.request.urlopen(f"{app.url}/metrics") as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                assert response.headers["X-Repro-Trace-Id"]
                exposition = response.read().decode("utf-8")
            samples = parse_exposition(exposition)  # raises if malformed
            for expected in (
                "repro_http_requests_total",
                "repro_http_request_seconds",
                "repro_http_inflight_requests",
                "repro_scheduler_queue_depth",
                "repro_scheduler_queries_total",
                "repro_scheduler_wait_seconds_total",
                "repro_registry_lookups_total",
                "repro_registry_build_seconds",
                "repro_rollup_cache_requests_total",
                "repro_artifact_requests_total",
                "repro_detect_scans_total",
            ):
                assert any(name.startswith(expected) for name, _ in samples), expected
            explain_ok = ("repro_http_requests_total", (("endpoint", "/explain"), ("status", "200")))
            assert samples[explain_ok] == 1
            # Unknown paths fold into the "other" endpoint label so
            # URL probing cannot blow up scrape cardinality.
            other_404 = ("repro_http_requests_total", (("endpoint", "other"), ("status", "404")))
            assert samples[other_404] == 1
            assert samples[("repro_http_inflight_requests", ())] >= 0
            count_key = ("repro_http_request_seconds_count", (("endpoint", "/explain"),))
            assert samples[count_key] == 1

            # --- scheduler stats surface -------------------------------
            stats = _get_json(f"{app.url}/stats")["scheduler"]
            assert stats["queue_depth"] == 0
            assert stats["wait_seconds"] >= 0.0
            assert "explain" in stats["wait_seconds_by_kind"]

            # The scrape persisted this worker's snapshot for siblings.
            assert (tmp_path / "cache" / "obs" / "metrics-t0.json").exists()
        finally:
            app.shutdown()

    def test_trace_sampling_zero_still_returns_trace_ids(self, tmp_path, fresh_registry):
        from repro.serve.http import make_app

        app = make_app(
            datasets=["covid-total"],
            port=0,
            cache_dir=str(tmp_path / "cache"),
            access_log=False,
            trace_sample=0.0,
            worker_id="t1",
        ).start()
        try:
            request = urllib.request.Request(f"{app.url}/healthz")
            with urllib.request.urlopen(request) as response:
                trace_id = response.headers["X-Repro-Trace-Id"]
                assert json.loads(response.read())["ok"] is True
            assert trace_id and len(trace_id) == 16
            # Unsampled traces are never exported.
            assert JsonLinesExporter.read(app.trace_export_path) == []
        finally:
            app.shutdown()


@pytest.mark.skipif(
    not __import__("repro.serve.http", fromlist=["reuseport_available"]).reuseport_available(),
    reason="SO_REUSEPORT unavailable on this platform",
)
def test_worker_pool_metrics_merge_across_processes(tmp_path):
    """A scrape on any SO_REUSEPORT worker reflects the whole pool:
    per-worker snapshot files under <cache_dir>/obs merge at scrape
    time, so request counts from both forked workers appear."""
    from repro.serve.multiproc import WorkerPool

    cache_dir = str(tmp_path / "cache")
    pool = WorkerPool(
        {
            "datasets": ["covid-total"],
            "cache_dir": cache_dir,
            "port": 0,
            "access_log": False,
        },
        workers=2,
    ).start()
    try:
        n_requests = 12
        for _ in range(n_requests):
            assert _get_json(f"{pool.url}/healthz")["ok"] is True
        # Workers flush snapshots periodically (and on every scrape of
        # themselves); poll until one worker's merged scrape accounts
        # for every request the pool served.
        obs_dir = Path(cache_dir) / "obs"
        deadline = time.monotonic() + 30.0
        merged_total = 0.0
        while time.monotonic() < deadline:
            with urllib.request.urlopen(f"{pool.url}/metrics") as response:
                samples = parse_exposition(response.read().decode("utf-8"))
            merged_total = sum(
                value
                for (name, labels), value in samples.items()
                if name == "repro_http_requests_total"
                and dict(labels).get("endpoint") == "/healthz"
            )
            if merged_total >= n_requests:
                break
            time.sleep(0.25)
        assert merged_total >= n_requests
        # Both workers left snapshot files behind the merge.
        names = sorted(p.name for p in obs_dir.glob("metrics-*.json"))
        assert names == ["metrics-w0.json", "metrics-w1.json"]
        workers = {
            json.loads(p.read_text(encoding="utf-8"))["worker"]
            for p in obs_dir.glob("metrics-*.json")
        }
        assert workers == {"w0", "w1"}
    finally:
        pool.shutdown()
