"""Tests for ASCII charts and explanation reports."""

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.exceptions import QueryError
from repro.relation.timeseries import TimeSeries
from repro.viz.ascii_chart import ascii_chart, sparkline
from repro.viz.report import (
    explanation_table,
    full_report,
    k_variance_table,
    segment_sparklines,
)
from tests.conftest import regime_relation


@pytest.fixture(scope="module")
def result():
    return ExplainPipeline(
        regime_relation(),
        "sales",
        ["cat"],
        config=ExplainConfig(use_filter=False, k=2),
    ).run()


def test_ascii_chart_dimensions():
    series = TimeSeries(np.linspace(0, 10, 50), [f"t{i}" for i in range(50)])
    chart = ascii_chart(series, cuts=[25], width=60, height=10)
    lines = chart.split("\n")
    assert len(lines) == 11  # height + footer
    assert "|" in chart  # the cut marker
    assert "t0" in lines[-1] and "t49" in lines[-1]


def test_ascii_chart_validation():
    with pytest.raises(QueryError):
        ascii_chart(TimeSeries([1.0]), width=4, height=2)


def test_ascii_chart_constant_series():
    chart = ascii_chart(TimeSeries([5.0, 5.0, 5.0]))
    assert "*" in chart


def test_sparkline_length_and_range():
    line = sparkline(np.linspace(0, 1, 200), width=40)
    assert len(line) == 40
    assert line[0] == "▁" and line[-1] == "█"
    assert sparkline(np.asarray([])) == ""


def test_explanation_table_contains_effects(result):
    table = explanation_table(result)
    assert "Top-1 Expl" in table
    assert "cat=a +" in table
    assert "cat=b +" in table


def test_k_variance_table_marks_elbow():
    pipeline = ExplainPipeline(
        regime_relation(), "sales", ["cat"], config=ExplainConfig(use_filter=False)
    )
    auto_result = pipeline.run()
    table = k_variance_table(auto_result)
    assert "<- elbow" in table


def test_full_report_sections(result):
    report = full_report(result)
    assert "Segment" in report
    assert "total variance" in report


def test_segment_sparklines_one_line_per_segment(result):
    lines = segment_sparklines(result).split("\n")
    assert len(lines) == len(result.segments)
    assert "cat=a" in lines[0]
