"""Tests for classical seasonal decomposition (section 8)."""

import numpy as np
import pytest

from repro.core.seasonal import decompose
from repro.exceptions import QueryError
from repro.relation.timeseries import TimeSeries


def seasonal_series(n=48, period=6):
    t = np.arange(n, dtype=np.float64)
    trend = 0.5 * t + 10.0
    seasonal = 5.0 * np.sin(2 * np.pi * t / period)
    return TimeSeries(trend + seasonal, [f"w{i}" for i in range(n)])


def test_components_sum_to_observed():
    series = seasonal_series()
    decomposition = decompose(series, period=6)
    reconstructed = (
        decomposition.trend.values
        + decomposition.seasonal.values
        + decomposition.residual.values
    )
    assert np.allclose(reconstructed, series.values)


def test_seasonal_component_is_periodic_and_centered():
    decomposition = decompose(seasonal_series(), period=6)
    seasonal = decomposition.seasonal.values
    assert np.allclose(seasonal[:6], seasonal[6:12])
    assert abs(seasonal[:6].mean()) < 1e-9


def test_trend_captures_slope():
    decomposition = decompose(seasonal_series(), period=6)
    trend = decomposition.trend.values
    # Linear trend slope ~0.5 in the interior.
    slope = (trend[30] - trend[12]) / 18.0
    assert slope == pytest.approx(0.5, abs=0.1)


def test_residual_small_for_clean_signal():
    decomposition = decompose(seasonal_series(), period=6)
    interior = decomposition.residual.values[6:-6]
    assert np.abs(interior).max() < 1.5


def test_validation():
    with pytest.raises(QueryError):
        decompose(seasonal_series(), period=1)
    with pytest.raises(QueryError):
        decompose(seasonal_series(n=8, period=6), period=6)


def test_components_accessor():
    decomposition = decompose(seasonal_series(), period=6)
    assert set(decomposition.components()) == {
        "observed",
        "trend",
        "seasonal",
        "residual",
    }
