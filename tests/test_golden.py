"""Golden regression tests for the example case-study configurations.

Small frozen top-k outputs for the covid-daily and sp500 example configs
live under ``tests/golden/``; these tests diff the current pipeline output
against them, so a refactor that silently changes *which* explanations are
reported (or their segmentation) fails loudly.

Structure — segment labels, explanation conjunctions, change effects, K,
candidate counts — is compared exactly.  Scores are compared to a 1e-9
relative tolerance: they are pure float64 pipelines, but small BLAS-backed
reductions may reassociate across numpy builds, and the point of these
fixtures is catching changed *explanations*, not changed math libraries.

Regenerate (after an intentional behavior change) with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.datasets.registry import load_dataset
from repro.detect.scoring import DetectConfig

GOLDEN_DIR = Path(__file__).parent / "golden"

#: name -> (dataset, config factory, window) — the example configurations.
CASES = {
    "covid_daily": (
        "covid-daily",
        lambda dataset: ExplainConfig.optimized(
            smoothing_window=dataset.smoothing_window
        ),
        (None, None),
    ),
    "sp500": (
        "sp500",
        lambda dataset: ExplainConfig.optimized(),
        (None, None),
    ),
    # A windowed slice of the covid spring wave: exercises the O(window)
    # session path the examples drill down through.
    "covid_daily_spring": (
        "covid-daily",
        lambda dataset: ExplainConfig.optimized(
            smoothing_window=dataset.smoothing_window
        ),
        ("2020-03-01", "2020-06-01"),
    ),
}


def _compute(name: str) -> dict:
    dataset_name, config_for, window = CASES[name]
    dataset = load_dataset(dataset_name)
    session = ExplainSession(
        dataset.relation,
        dataset.measure,
        dataset.explain_by,
        aggregate=dataset.aggregate,
        config=config_for(dataset),
    )
    result = session.explain(*window)
    return {
        "dataset": dataset_name,
        "window": list(window),
        "k": result.k,
        "k_was_auto": result.k_was_auto,
        "epsilon": result.epsilon,
        "filtered_epsilon": result.filtered_epsilon,
        "segments": [
            {
                "start": str(segment.start_label),
                "stop": str(segment.stop_label),
                "explanations": [
                    {
                        "explanation": repr(scored.explanation),
                        "gamma": scored.gamma,
                        "tau": scored.tau,
                    }
                    for scored in segment.explanations
                ],
            }
            for segment in result.segments
        ],
    }


#: name -> (dataset, explain_by override, config factory) — example
#: configurations served through the rollup lattice.  The lattice holds
#: each dataset's default lattice (full shape + singles); covid_daily
#: requests the full shape (an **exact** route), sp500 requests a coarser
#: two-attribute shape the router must **derive** from the 3-dim root.
#: Both outputs are frozen: a routing or derivation change that altered a
#: single reported explanation fails here.
LATTICE_CASES = {
    "covid_daily_lattice": (
        "covid-daily",
        None,
        lambda dataset: ExplainConfig.optimized(
            smoothing_window=dataset.smoothing_window
        ),
    ),
    "sp500_lattice": (
        "sp500",
        ("category", "subcategory"),
        lambda dataset: ExplainConfig.optimized(),
    ),
}


def _compute_lattice(name: str) -> dict:
    from repro.lattice import LatticeRouter, build_lattice, default_lattice

    dataset_name, explain_by, config_for = LATTICE_CASES[name]
    dataset = load_dataset(dataset_name)
    config = config_for(dataset)
    cubes, _ = build_lattice(
        dataset.relation,
        default_lattice(
            dataset.explain_by,
            dataset.measure,
            aggregate=dataset.aggregate,
            max_order=config.max_order,
            deduplicate=config.deduplicate,
        ),
    )
    router = LatticeRouter.for_relation(dataset.relation)
    router.seed(cubes)
    session = ExplainSession.from_lattice(
        router,
        relation=dataset.relation,
        measure=dataset.measure,
        explain_by=explain_by or dataset.explain_by,
        aggregate=dataset.aggregate,
        config=config,
    )
    result = session.explain()
    info = session.route_info
    return {
        "dataset": dataset_name,
        "explain_by": list(explain_by or dataset.explain_by),
        "route": {
            "decision": info.decision,
            "served_by": info.served_by.describe() if info.served_by else None,
        },
        "k": result.k,
        "k_was_auto": result.k_was_auto,
        "epsilon": result.epsilon,
        "filtered_epsilon": result.filtered_epsilon,
        "segments": [
            {
                "start": str(segment.start_label),
                "stop": str(segment.stop_label),
                "explanations": [
                    {
                        "explanation": repr(scored.explanation),
                        "gamma": scored.gamma,
                        "tau": scored.tau,
                    }
                    for scored in segment.explanations
                ],
            }
            for segment in result.segments
        ],
    }


#: name -> (dataset, DetectConfig factory) — detect-over-example configs.
#: Thresholds are deliberately strict: covid-daily is volatile enough that
#: the defaults flag thousands of cells, and the point of the fixture is a
#: small frozen set of the *worst* ones plus the plan built from them.
DETECT_CASES = {
    "covid_daily_detect": (
        "covid-daily",
        lambda dataset: DetectConfig(
            z_warn=8.0,
            z_alert=12.0,
            z_critical=20.0,
            max_cells=25,
            link_top=2,
        ),
    ),
}


def _compute_detect(name: str) -> dict:
    from repro.detect.session import DetectSession

    dataset_name, config_for = DETECT_CASES[name]
    dataset = load_dataset(dataset_name)
    session = ExplainSession(
        dataset.relation,
        dataset.measure,
        dataset.explain_by,
        aggregate=dataset.aggregate,
        config=ExplainConfig.optimized(smoothing_window=dataset.smoothing_window),
    )
    detector = DetectSession(session, config=config_for(dataset))
    report = detector.scan()
    plan = detector.plan(report, source=dataset_name)
    return {
        "dataset": dataset_name,
        "calendar_mode": detector.baselines.calendar_mode,
        "report": report.to_json(),
        "plan": plan.to_json(),
    }


def _assert_matches(actual, expected, path="$"):
    if isinstance(expected, dict):
        assert isinstance(actual, dict) and set(actual) == set(expected), path
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), (
            f"{path}: {len(actual)} != {len(expected)} entries"
        )
        for index, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{index}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=1e-9, abs=1e-12), (
            f"{path}: {actual!r} != {expected!r}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_output_is_frozen(name):
    payload = _compute(name)
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        pytest.skip(f"regenerated {path}")
    assert path.is_file(), (
        f"missing golden fixture {path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    _assert_matches(payload, expected)


@pytest.mark.parametrize("name", sorted(DETECT_CASES))
def test_detect_golden_output_is_frozen(name):
    payload = _compute_detect(name)
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        pytest.skip(f"regenerated {path}")
    assert path.is_file(), (
        f"missing golden fixture {path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    _assert_matches(payload, expected)


@pytest.mark.parametrize("name", sorted(LATTICE_CASES))
def test_lattice_routed_golden_output_is_frozen(name):
    payload = _compute_lattice(name)
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        pytest.skip(f"regenerated {path}")
    assert path.is_file(), (
        f"missing golden fixture {path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    # The route decision is structural: compared exactly, like the rest.
    _assert_matches(payload, expected)
