"""Tests for the storage layer: repro.store sources, ingestion, wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.cache import RollupCache
from repro.cube.datacube import ExplanationCube
from repro.datasets.registry import load_dataset
from repro.exceptions import QueryError, ReproError, SchemaError
from repro.relation.csvio import read_csv, write_csv
from repro.relation.schema import Schema
from repro.relation.table import Relation
from repro.serve.registry import DatasetSpec, SessionRegistry
from repro.store import (
    CsvSource,
    NpzSource,
    SqliteSource,
    convert,
    dataset_from_source,
    is_source_uri,
    load_or_build_from_source,
    parse_source_uri,
    resolve_source,
    source_cube_key,
    write_npz,
    write_sqlite,
)
from tests.conftest import build_relation, regime_relation, two_attr_relation


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "kpi.csv"
    write_csv(regime_relation(), path)
    return str(path)


@pytest.fixture
def canonical(csv_path):
    """The regime relation in the CSV dtype policy (object text columns)."""
    return read_csv(csv_path, dimensions=["cat"], measures=["sales"], time="t")


def top_k_fingerprint(result):
    """Byte-exact rendering of every segment's top explanations."""
    return tuple(
        (
            segment.start,
            segment.stop,
            tuple(
                (repr(s.explanation), s.gamma.hex(), s.tau)
                for s in segment.explanations
            ),
        )
        for segment in result.segments
    )


# ----------------------------------------------------------------------
# URI grammar
# ----------------------------------------------------------------------
class TestUriGrammar:
    def test_explicit_schemes(self):
        assert parse_source_uri("csv:a.csv")[:2] == ("csv", "a.csv")
        assert parse_source_uri("npz:/x/y.npz")[:2] == ("npz", "/x/y.npz")
        scheme, path, params = parse_source_uri("sqlite:db.db?table=t&where=a%3D1")
        assert (scheme, path) == ("sqlite", "db.db")
        assert params == {"table": "t", "where": "a=1"}

    def test_extension_inference(self):
        assert parse_source_uri("plain.csv")[0] == "csv"
        assert parse_source_uri("snap.npz")[0] == "npz"
        for extension in (".db", ".sqlite", ".sqlite3"):
            assert parse_source_uri(f"x{extension}")[0] == "sqlite"

    def test_unresolvable_raises(self):
        with pytest.raises(QueryError):
            parse_source_uri("mystery.parquet")
        with pytest.raises(QueryError):
            parse_source_uri("csv:")

    def test_is_source_uri(self):
        assert is_source_uri("csv:x.txt")
        assert is_source_uri("table.csv")
        assert is_source_uri("sqlite:db?table=t")
        assert not is_source_uri("covid-total")
        assert not is_source_uri("liquor")

    def test_unknown_parameter_rejected(self, csv_path):
        with pytest.raises(QueryError, match="unsupported parameter"):
            resolve_source(f"csv:{csv_path}?time=t&measure=sales&tabel=x")

    def test_csv_requires_roles(self, csv_path):
        with pytest.raises(QueryError, match="time column"):
            resolve_source(f"csv:{csv_path}")

    def test_sqlite_requires_table(self):
        with pytest.raises(QueryError, match="table="):
            resolve_source("sqlite:x.db?time=t&measure=m")

    def test_sqlite_order_validated(self):
        with pytest.raises(QueryError, match="order="):
            resolve_source("sqlite:x.db?table=t&time=t&measure=m&order=rows")

    def test_explicit_arguments_override_params(self, csv_path):
        source = resolve_source(
            f"csv:{csv_path}?time=bogus&measure=nope", time="t", measures=["sales"]
        )
        assert source.schema.require_time() == "t"
        assert source.schema.measure_names() == ("sales",)

    def test_passthrough_source_object(self, csv_path):
        source = CsvSource(csv_path, measures=["sales"], time="t")
        assert resolve_source(source) is source


# ----------------------------------------------------------------------
# CsvSource
# ----------------------------------------------------------------------
class TestCsvSource:
    def test_read_matches_read_csv(self, csv_path, canonical):
        source = CsvSource(csv_path, dimensions=["cat"], measures=["sales"], time="t")
        assert source.read().fingerprint() == canonical.fingerprint()

    def test_iter_chunks_concat_equals_read(self, csv_path, canonical):
        source = CsvSource(csv_path, dimensions=["cat"], measures=["sales"], time="t")
        chunks = list(source.iter_chunks(chunk_rows=7))
        assert all(chunk.n_rows <= 7 for chunk in chunks)
        assert chunks[0].n_rows == 7
        merged = chunks[0]
        for chunk in chunks[1:]:
            merged = merged.concat(chunk)
        assert merged.fingerprint() == canonical.fingerprint()

    def test_column_discovery_and_missing_column(self, csv_path):
        source = CsvSource(csv_path, measures=["sales"], time="t")
        assert source.column_names() == ("t", "cat", "sales")
        bad = CsvSource(csv_path, dimensions=["zz"], measures=["sales"], time="t")
        with pytest.raises(SchemaError, match="zz"):
            bad.read()
        with pytest.raises(SchemaError, match="zz"):
            list(bad.iter_chunks(8))

    def test_fingerprint_tracks_content_and_binding(self, tmp_path, csv_path):
        source = CsvSource(csv_path, dimensions=["cat"], measures=["sales"], time="t")
        first = source.fingerprint()
        assert first == source.fingerprint()
        rebound = CsvSource(csv_path, measures=["sales"], time="t")
        assert rebound.fingerprint() != first
        with open(csv_path, "a", encoding="utf-8") as handle:
            handle.write("t999,a,1.0\n")
        assert source.fingerprint() != first

    def test_bad_chunk_rows(self, csv_path):
        source = CsvSource(csv_path, measures=["sales"], time="t")
        with pytest.raises(SchemaError):
            list(source.iter_chunks(0))


# ----------------------------------------------------------------------
# NpzSource + the snapshot format
# ----------------------------------------------------------------------
class TestNpzSource:
    def test_round_trip_preserves_fingerprint(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        header = write_npz(canonical, path)
        assert header["n_rows"] == canonical.n_rows
        assert header["chunk_safe"] is True
        source = NpzSource(path)
        assert source.schema == canonical.schema
        assert source.count_rows() == canonical.n_rows
        assert source.read().fingerprint() == canonical.fingerprint()

    def test_fingerprint_is_header_only(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        source = NpzSource(path)
        # Identical content written elsewhere shares the fingerprint.
        other_path = tmp_path / "other.npz"
        write_npz(canonical, other_path)
        assert NpzSource(other_path).fingerprint() == source.fingerprint()

    def test_measure_column_is_memory_mapped(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        column = NpzSource(path).read().column("sales")
        base = column
        while not isinstance(base, np.memmap) and getattr(base, "base", None) is not None:
            base = base.base
        assert isinstance(base, np.memmap)

    def test_mmap_fallback_matches(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        mapped = NpzSource(path, mmap=True).read()
        copied = NpzSource(path, mmap=False).read()
        assert mapped.fingerprint() == copied.fingerprint()

    def test_iter_chunks_bounded_and_equal(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        chunks = list(NpzSource(path).iter_chunks(10))
        assert all(chunk.n_rows <= 10 for chunk in chunks)
        merged = chunks[0]
        for chunk in chunks[1:]:
            merged = merged.concat(chunk)
        assert merged.fingerprint() == canonical.fingerprint()

    def test_rebinding_a_subset_of_columns(self, tmp_path):
        relation = read_write_two_attr(tmp_path)
        path = tmp_path / "two.npz"
        write_npz(relation, path)
        source = NpzSource(path, dimensions=["a"], measures=["m"], time="t")
        assert source.schema.names == ("t", "a", "m")
        loaded = source.read()
        assert loaded.schema.dimension_names() == ("a",)
        np.testing.assert_array_equal(loaded.column("m"), relation.column("m"))

    def test_partial_override_keeps_stored_roles(self, tmp_path):
        relation = read_write_two_attr(tmp_path)
        path = tmp_path / "two.npz"
        write_npz(relation, path)
        # Only dimensions overridden: measure and time come from the
        # snapshot header, so the single-flag re-bind stays servable.
        source = NpzSource(path, dimensions=["a"])
        assert source.schema.dimension_names() == ("a",)
        assert source.schema.measure_names() == ("m",)
        assert source.schema.require_time() == "t"
        session = ExplainSession.from_source(source)
        assert session.explain_by == ("a",)

    def test_chunk_safe_false_for_backfilled_order(self, tmp_path):
        relation = build_relation(
            {"t": ["d2", "d1", "d2"], "c": ["x", "y", "z"], "m": [1.0, 2.0, 3.0]},
            dimensions=["c"],
            measures=["m"],
            time="t",
        )
        path = tmp_path / "unsorted.npz"
        header = write_npz(relation, path)
        assert header["chunk_safe"] is False
        assert NpzSource(path).chunk_safe is False

    def test_trailing_nul_rejected(self, tmp_path):
        relation = build_relation(
            {
                "t": np.asarray(["d1", "d2"], dtype=object),
                # An explicit object column: a plain list would be inferred
                # as a U array, which strips the trailing NUL on its own.
                "c": np.asarray(["ok", "bad\x00"], dtype=object),
                "m": [1.0, 2.0],
            },
            dimensions=["c"],
            measures=["m"],
            time="t",
        )
        with pytest.raises(SchemaError, match="NUL"):
            write_npz(relation, tmp_path / "nul.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(SchemaError):
            NpzSource(path).schema


def read_write_two_attr(tmp_path) -> Relation:
    """The two-attribute relation canonicalized through the CSV policy."""
    path = tmp_path / "two.csv"
    write_csv(two_attr_relation(), path)
    return read_csv(path, dimensions=["a", "b"], measures=["m"], time="t")


# ----------------------------------------------------------------------
# SqliteSource + pushdown
# ----------------------------------------------------------------------
class TestSqliteSource:
    @pytest.fixture
    def db_path(self, tmp_path, canonical):
        path = tmp_path / "kpi.db"
        write_sqlite(canonical, path, "kpi")
        return str(path)

    def test_round_trip_preserves_fingerprint(self, db_path, canonical):
        source = SqliteSource(
            db_path, "kpi", dimensions=["cat"], measures=["sales"], time="t"
        )
        assert source.column_names() == ("t", "cat", "sales")
        assert source.count_rows() == canonical.n_rows
        assert source.read().fingerprint() == canonical.fingerprint()

    def test_iter_chunks_equal_read(self, db_path, canonical):
        source = SqliteSource(
            db_path, "kpi", dimensions=["cat"], measures=["sales"], time="t"
        )
        chunks = list(source.iter_chunks(chunk_rows=11))
        assert all(chunk.n_rows <= 11 for chunk in chunks)
        merged = chunks[0]
        for chunk in chunks[1:]:
            merged = merged.concat(chunk)
        assert merged.fingerprint() == canonical.fingerprint()

    def test_where_pushdown(self, db_path):
        source = SqliteSource(
            db_path,
            "kpi",
            dimensions=["cat"],
            measures=["sales"],
            time="t",
            where="cat='a'",
        )
        relation = source.read()
        assert set(relation.column("cat")) == {"a"}
        assert source.count_rows() == relation.n_rows

    def test_preaggregate_pushdown_matches_sum_series(self, tmp_path, canonical):
        # Duplicate every row so the GROUP BY genuinely reduces.
        doubled = canonical.concat(canonical)
        path = tmp_path / "dup.db"
        write_sqlite(doubled, path, "kpi")
        raw = SqliteSource(
            path, "kpi", dimensions=["cat"], measures=["sales"], time="t"
        )
        pushed = SqliteSource(
            path,
            "kpi",
            dimensions=["cat"],
            measures=["sales"],
            time="t",
            preaggregate=True,
            order_by_time=True,
        )
        reduced = pushed.read()
        assert reduced.n_rows == canonical.n_rows  # one row per (t, cat)
        raw_cube = ExplanationCube(raw.read(), ["cat"], "sales")
        pushed_cube = ExplanationCube(reduced, ["cat"], "sales")
        np.testing.assert_allclose(raw_cube.overall_values, pushed_cube.overall_values)
        np.testing.assert_allclose(
            raw_cube.included_values, pushed_cube.included_values
        )
        # Supports deliberately differ: distinct groups, not raw rows.
        assert pushed_cube.supports.sum() < raw_cube.supports.sum()

    def test_preaggregate_gating(self, db_path):
        with pytest.raises(QueryError, match="sum"):
            SqliteSource(
                db_path,
                "kpi",
                measures=["sales"],
                time="t",
                preaggregate=True,
                default_aggregate="avg",
            )

    def test_missing_table_and_db(self, db_path, tmp_path):
        with pytest.raises(SchemaError, match="no table"):
            SqliteSource(db_path, "nope", measures=["sales"], time="t").column_names()
        with pytest.raises(SchemaError, match="no such SQLite"):
            SqliteSource(
                tmp_path / "ghost.db", "kpi", measures=["sales"], time="t"
            ).read()

    def test_order_by_time_is_chunk_safe(self, tmp_path):
        shuffled = build_relation(
            {
                "t": ["d3", "d1", "d2", "d1", "d3"],
                "c": ["x", "y", "x", "y", "x"],
                "m": [1.0, 2.0, 3.0, 4.0, 5.0],
            },
            dimensions=["c"],
            measures=["m"],
            time="t",
        )
        path = tmp_path / "shuffled.db"
        write_sqlite(shuffled, path, "kpi")
        source = SqliteSource(
            path,
            "kpi",
            dimensions=["c"],
            measures=["m"],
            time="t",
            order_by_time=True,
        )
        times = source.read().column("t")
        assert list(times) == sorted(times)


# ----------------------------------------------------------------------
# Out-of-core ingestion + source-keyed caching
# ----------------------------------------------------------------------
class _ExplodingReads(NpzSource):
    """A source that forbids ingestion — proves cache hits skip it."""

    def read(self):  # pragma: no cover - failing is the assertion
        raise AssertionError("cache hit must not ingest")

    def iter_chunks(self, chunk_rows=None):  # pragma: no cover
        raise AssertionError("cache hit must not ingest")


class TestIngest:
    def test_chunked_build_is_byte_identical(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        source = NpzSource(path)
        one_shot = ExplanationCube(source.read(), ["cat"], "sales")
        cube, report = load_or_build_from_source(
            None, source, ["cat"], "sales", chunk_rows=9
        )
        assert report.out_of_core and not report.cache_hit
        assert report.chunks == 8 and report.peak_chunk_rows == 9
        assert report.rows == canonical.n_rows
        assert cube.explanations == one_shot.explanations
        np.testing.assert_array_equal(cube.included_values, one_shot.included_values)
        np.testing.assert_array_equal(cube.excluded_values, one_shot.excluded_values)
        np.testing.assert_array_equal(cube.overall_values, one_shot.overall_values)
        np.testing.assert_array_equal(cube.supports, one_shot.supports)

    def test_unsafe_chunk_order_degrades_to_one_shot(self, tmp_path):
        relation = build_relation(
            {
                "t": ["d2", "d2", "d1", "d3"],
                "c": ["x", "y", "x", "y"],
                "m": [1.0, 2.0, 3.0, 4.0],
            },
            dimensions=["c"],
            measures=["m"],
            time="t",
        )
        path = tmp_path / "unsafe.npz"
        write_npz(relation, path)
        source = NpzSource(path)
        reference = ExplanationCube(source.read(), ["c"], "m")
        cube, report = load_or_build_from_source(None, source, ["c"], "m", chunk_rows=2)
        assert not report.out_of_core  # fell back
        assert report.rows == 4
        np.testing.assert_array_equal(cube.included_values, reference.included_values)

    def test_known_unsafe_source_skips_chunked_attempt(self, tmp_path):
        relation = build_relation(
            {"t": ["d2", "d1"], "c": ["x", "y"], "m": [1.0, 2.0]},
            dimensions=["c"],
            measures=["m"],
            time="t",
        )
        path = tmp_path / "unsafe.npz"
        write_npz(relation, path)

        class _CountingChunks(NpzSource):
            calls = 0

            def iter_chunks(self, chunk_rows=None):
                type(self).calls += 1
                return super().iter_chunks(chunk_rows)

        source = _CountingChunks(path)
        assert source.chunk_safe is False
        _, report = load_or_build_from_source(None, source, ["c"], "m", chunk_rows=1)
        assert not report.out_of_core
        assert _CountingChunks.calls == 0  # the doomed attempt never ran

    def test_cache_hit_skips_ingestion_entirely(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        cache = RollupCache(tmp_path / "cache")
        cube, cold = load_or_build_from_source(
            cache, NpzSource(path), ["cat"], "sales", chunk_rows=16
        )
        assert not cold.cache_hit
        warm_cube, warm = load_or_build_from_source(
            cache, _ExplodingReads(path), ["cat"], "sales"
        )
        assert warm.cache_hit and warm.rows == 0
        np.testing.assert_array_equal(
            warm_cube.included_values, cube.included_values
        )
        assert warm_cube.appendable  # the ledger rode along

    def test_source_key_distinct_from_relation_key(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        key = source_cube_key(NpzSource(path), "sales", ["cat"])
        assert key.fingerprint.startswith("src-")
        assert key.explain_by == ("cat",)
        again = source_cube_key(NpzSource(path), "sales", ["cat"])
        assert key == again

    def test_empty_source_raises(self, tmp_path):
        empty = Relation.empty(
            Schema.build(dimensions=["c"], measures=["m"], time="t")
        )
        path = tmp_path / "empty.npz"
        write_npz(empty, path)
        with pytest.raises(QueryError, match="no rows"):
            load_or_build_from_source(None, NpzSource(path), ["c"], "m")

    def test_convert_between_all_backends(self, tmp_path, csv_path, canonical):
        uri = f"csv:{csv_path}?time=t&dims=cat&measure=sales"
        npz_path, rows = convert(resolve_source(uri), f"npz:{tmp_path / 's.npz'}")
        assert rows == canonical.n_rows
        db_uri = f"sqlite:{tmp_path / 's.db'}?table=kpi"
        convert(NpzSource(npz_path), db_uri)
        back_csv = f"csv:{tmp_path / 'back.csv'}"
        convert(
            resolve_source(f"{db_uri}&time=t&dims=cat&measure=sales"), back_csv
        )
        final = read_csv(
            tmp_path / "back.csv", dimensions=["cat"], measures=["sales"], time="t"
        )
        assert final.fingerprint() == canonical.fingerprint()

    def test_convert_to_sqlite_requires_table(self, tmp_path, csv_path):
        source = resolve_source(f"csv:{csv_path}?time=t&dims=cat&measure=sales")
        with pytest.raises(QueryError, match="table="):
            convert(source, f"sqlite:{tmp_path / 'x.db'}")

    def test_convert_rejects_unknown_dest_params(self, tmp_path, csv_path):
        source = resolve_source(f"csv:{csv_path}?time=t&dims=cat&measure=sales")
        with pytest.raises(QueryError, match="tabel"):
            convert(source, f"sqlite:{tmp_path / 'x.db'}?tabel=kpi")
        with pytest.raises(QueryError, match="compress"):
            convert(source, f"npz:{tmp_path / 'x.npz'}?compress=1")


# ----------------------------------------------------------------------
# Session + dataset + serving wiring
# ----------------------------------------------------------------------
class TestSessionFromSource:
    def test_explain_matches_in_memory_session(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        source_session = ExplainSession.from_source(f"npz:{path}", chunk_rows=10)
        memory_session = ExplainSession(
            canonical, measure="sales", explain_by=["cat"]
        )
        assert top_k_fingerprint(source_session.explain()) == top_k_fingerprint(
            memory_session.explain()
        )
        assert source_session.ingest_report.out_of_core

    def test_relation_stays_lazy_until_needed(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        session = ExplainSession.from_source(f"npz:{path}")
        assert not session.relation_loaded
        session.explain()
        session.diff("t000", "t023")
        assert not session.relation_loaded
        assert session.relation.n_rows == canonical.n_rows
        assert session.relation_loaded

    def test_warm_cache_session_never_reads_source(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        cache_dir = str(tmp_path / "cache")
        cold = ExplainSession.from_source(f"npz:{path}", cache_dir=cache_dir)
        warm = ExplainSession.from_source(
            _ExplodingReads(path), cache_dir=cache_dir
        )
        assert warm.cache_hit is True
        assert warm.ingest_report.cache_hit
        assert top_k_fingerprint(warm.explain()) == top_k_fingerprint(cold.explain())

    def test_append_after_from_source(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        session = ExplainSession.from_source(f"npz:{path}")
        delta = build_relation(
            {"t": ["t900", "t900"], "cat": ["a", "b"], "sales": [5.0, 6.0]},
            dimensions=["cat"],
            measures=["sales"],
            time="t",
        )
        info = session.append(delta)
        assert info is not None and info.n_times == canonical.n_rows // 3 + 1
        assert session.relation.n_rows == canonical.n_rows + 2

    def test_lazy_relation_requires_explicit_binding(self, canonical):
        with pytest.raises(QueryError, match="explain_by"):
            ExplainSession(lambda: canonical, measure="sales")

    def test_dataset_from_source_defaults(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        dataset = dataset_from_source(NpzSource(path))
        assert dataset.measure == "sales"
        assert dataset.explain_by == ("cat",)
        assert dataset.relation.n_rows == canonical.n_rows
        assert dataset.aggregate == "sum"

    def test_load_dataset_accepts_uri(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        dataset = load_dataset(f"npz:{path}")
        assert dataset.measure == "sales"
        with pytest.raises(QueryError, match="unknown dataset"):
            load_dataset("not-a-dataset")

    def test_registry_serves_source_spec_from_cache(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        cache_dir = str(tmp_path / "cache")
        first = SessionRegistry(
            specs=[DatasetSpec.from_source(f"npz:{path}", name="kpi")],
            cache_dir=cache_dir,
        )
        cold = first.session("kpi")
        assert cold.cache_hit is False
        second = SessionRegistry(
            specs=[DatasetSpec.from_source(f"npz:{path}", name="kpi")],
            cache_dir=cache_dir,
        )
        warm = second.session("kpi")
        assert warm.cache_hit is True
        assert not warm.relation_loaded
        rows = [r for r in second.describe() if r["name"] == "kpi"]
        assert rows[0]["loaded"] and rows[0]["rows"] is None  # never ingested
        assert top_k_fingerprint(warm.explain()) == top_k_fingerprint(cold.explain())

    def test_registry_source_spec_honors_explain_by(self, tmp_path):
        relation = read_write_two_attr(tmp_path)
        path = tmp_path / "two.npz"
        write_npz(relation, path)
        registry = SessionRegistry(
            specs=[
                DatasetSpec.from_source(f"npz:{path}", name="two", explain_by=("a",))
            ]
        )
        session = registry.session("two")
        assert session.explain_by == ("a",)


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCli:
    def test_store_convert_and_inspect(self, capsys, tmp_path, csv_path):
        npz = str(tmp_path / "kpi.npz")
        code, out, _ = run_cli(
            capsys,
            "store",
            "convert",
            f"csv:{csv_path}?time=t&dims=cat&measure=sales",
            f"npz:{npz}",
        )
        assert code == 0 and "wrote 72 rows" in out
        code, out, _ = run_cli(capsys, "store", "inspect", f"npz:{npz}")
        assert code == 0
        assert "t:time" in out and "cat:dimension" in out and "sales:measure" in out
        assert "rows:        72" in out
        assert "chunk-safe:  yes" in out
        assert "fingerprint: " in out

    def test_store_convert_missing_dest(self, capsys, csv_path):
        code, _, err = run_cli(
            capsys, "store", "convert", f"csv:{csv_path}?time=t&measure=sales"
        )
        assert code == 2 and "destination" in err

    def test_explain_source_uri(self, capsys, tmp_path, csv_path):
        npz = str(tmp_path / "kpi.npz")
        run_cli(
            capsys,
            "store",
            "convert",
            f"csv:{csv_path}?time=t&dims=cat&measure=sales",
            f"npz:{npz}",
        )
        code, out, _ = run_cli(capsys, "explain", "--source", f"npz:{npz}", "--k", "2")
        assert code == 0 and "cat=a" in out and "cat=b" in out

    def test_explain_out_of_core_matches_csv_run(self, capsys, tmp_path, csv_path):
        npz = str(tmp_path / "kpi.npz")
        run_cli(
            capsys,
            "store",
            "convert",
            f"csv:{csv_path}?time=t&dims=cat&measure=sales",
            f"npz:{npz}",
        )
        code, chunked_out, _ = run_cli(
            capsys,
            "explain",
            "--source", f"npz:{npz}",
            "--out-of-core",
            "--chunk-rows", "10",
            "--k", "2",
        )
        assert code == 0
        assert "out-of-core" in chunked_out
        code, plain_out, _ = run_cli(
            capsys,
            "explain",
            "--csv", csv_path,
            "--time", "t",
            "--dimensions", "cat",
            "--measure", "sales",
            "--k", "2",
        )
        assert code == 0
        # Identical explanation table (the ingest and latency lines are
        # run-specific).
        assert plain_out.split("\nK=")[0] in chunked_out

    def test_out_of_core_requires_source(self, capsys, csv_path):
        code, _, err = run_cli(
            capsys,
            "explain",
            "--csv", csv_path,
            "--time", "t",
            "--dimensions", "cat",
            "--measure", "sales",
            "--out-of-core",
        )
        assert code == 2 and "--out-of-core requires --source" in err

    def test_explain_rejects_multiple_sources(self, capsys, csv_path):
        code, _, err = run_cli(
            capsys,
            "explain",
            "--csv", csv_path,
            "--source", f"csv:{csv_path}?time=t&measure=sales",
        )
        assert code == 2 and "exactly one" in err

    def test_diff_and_recommend_source(self, capsys, tmp_path, csv_path):
        npz = str(tmp_path / "kpi.npz")
        run_cli(
            capsys,
            "store",
            "convert",
            f"csv:{csv_path}?time=t&dims=cat&measure=sales",
            f"npz:{npz}",
        )
        code, out, _ = run_cli(
            capsys, "diff", "--source", f"npz:{npz}", "--start", "t000", "--stop", "t023"
        )
        assert code == 0 and "cat=" in out
        code, out, _ = run_cli(capsys, "recommend", "--source", f"npz:{npz}")
        assert code == 0 and "cat" in out

    def test_cache_hit_line_on_warm_out_of_core(self, capsys, tmp_path, csv_path):
        npz = str(tmp_path / "kpi.npz")
        cache = str(tmp_path / "cache")
        run_cli(
            capsys,
            "store",
            "convert",
            f"csv:{csv_path}?time=t&dims=cat&measure=sales",
            f"npz:{npz}",
        )
        args = (
            "explain", "--source", f"npz:{npz}",
            "--out-of-core", "--cache-dir", cache, "--k", "2",
        )
        code, cold_out, _ = run_cli(capsys, *args)
        assert code == 0 and "out-of-core" in cold_out
        code, warm_out, _ = run_cli(capsys, *args)
        assert code == 0 and "served from the rollup cache" in warm_out


class TestReviewRegressions:
    """Regressions for review findings: URI lists, discovery, laziness."""

    def test_dataset_list_split_keeps_uri_commas(self):
        from repro.cli import _split_dataset_names

        uri = "sqlite:s.db?table=t&time=day&dims=region,channel&measure=rev"
        assert _split_dataset_names([f"covid-total,{uri},sp500"]) == [
            "covid-total",
            uri,
            "sp500",
        ]
        assert _split_dataset_names(["liquor , covid-daily"]) == [
            "liquor",
            "covid-daily",
        ]

    def test_inspect_discovers_unbound_csv(self, capsys, csv_path):
        code, out, _ = run_cli(capsys, "store", "inspect", f"csv:{csv_path}")
        assert code == 0
        assert "t:(unbound)" in out and "sales:(unbound)" in out

    def test_chunked_ragged_error_names_file_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text(
            "t,c,m\n" + "".join(f"d{i},x,1.0\n" for i in range(10)) + "d10,y\n"
        )
        source = CsvSource(path, dimensions=["c"], measures=["m"], time="t")
        with pytest.raises(SchemaError, match="row 12"):
            list(source.iter_chunks(chunk_rows=4))

    def test_source_spec_loader_enforces_laziness(self):
        spec = DatasetSpec.from_source("npz:whatever.npz")
        with pytest.raises(QueryError, match="lazily"):
            spec.loader()

    def test_one_shot_fallback_adopts_relation(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)
        session = ExplainSession.from_source(f"npz:{path}", out_of_core=False)
        # The one-shot path materialized the relation; it must be adopted,
        # not thrown away and re-ingested on the first recommend().
        assert session.relation_loaded
        assert session.relation.n_rows == canonical.n_rows
        assert session.ingest_report.relation is session.relation

    def test_wal_sidecar_changes_fingerprint(self, tmp_path, canonical):
        import sqlite3

        path = tmp_path / "wal.db"
        write_sqlite(canonical, path, "kpi")
        connection = sqlite3.connect(path)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.commit()
        source = SqliteSource(
            path, "kpi", dimensions=["cat"], measures=["sales"], time="t"
        )
        before_rows = source.read().n_rows
        before = source.fingerprint()
        # Commit a row that lives in the -wal sidecar, main file unchanged.
        connection.execute(
            'INSERT INTO "kpi" VALUES (?, ?, ?)', ("t999", "a", 1.0)
        )
        connection.commit()
        assert source.read().n_rows == before_rows + 1
        assert source.fingerprint() != before, "WAL rows must invalidate"
        connection.close()

    def test_preaggregate_rejects_aggregate_override(self, tmp_path, canonical):
        path = tmp_path / "pre.db"
        write_sqlite(canonical, path, "kpi")
        uri = (
            f"sqlite:{path}?table=kpi&time=t&dims=cat&measure=sales&preaggregate=1"
        )
        with pytest.raises(QueryError, match="pre-aggregates"):
            ExplainSession.from_source(uri, aggregate="avg")
        with pytest.raises(QueryError, match="pre-aggregates"):
            dataset_from_source(resolve_source(uri), aggregate="avg")
        # sum stays allowed.
        assert ExplainSession.from_source(uri).aggregate == "sum"

    def test_out_of_core_rejects_conflicting_flags(self, capsys, tmp_path, csv_path):
        npz = str(tmp_path / "kpi.npz")
        run_cli(
            capsys,
            "store",
            "convert",
            f"csv:{csv_path}?time=t&dims=cat&measure=sales",
            f"npz:{npz}",
        )
        code, _, err = run_cli(
            capsys,
            "explain",
            "--dataset", "covid-total",
            "--source", f"npz:{npz}",
            "--out-of-core",
        )
        assert code == 2 and "exactly one" in err

    def test_repeated_datasets_flag_is_unambiguous(self):
        from repro.cli import _split_dataset_names

        ambiguous = "sqlite:s.db?table=k&time=t&measure=v&dims=cat,covid-total"
        # A flag value that is itself a single source URI is taken whole —
        # even when a query-parameter fragment looks like a dataset name.
        assert _split_dataset_names([ambiguous]) == [ambiguous]
        assert _split_dataset_names([ambiguous, "sp500"]) == [ambiguous, "sp500"]
        # Only a value that is not a single entry gets list-split.
        assert _split_dataset_names([f"covid-total,{ambiguous}"]) == [
            "covid-total",
            "sqlite:s.db?table=k&time=t&measure=v&dims=cat",
            "covid-total",
        ]

    def test_where_plus_is_literal(self, tmp_path):
        relation = build_relation(
            {
                "t": ["d1", "d2", "d1", "d2"],
                "cat": ["a+b", "a+b", "a b", "a b"],
                "v": [1.0, 3.0, 2.0, 4.0],
            },
            dimensions=["cat"],
            measures=["v"],
            time="t",
        )
        path = tmp_path / "plus.db"
        write_sqlite(relation, path, "k")
        source = resolve_source(
            f"sqlite:{path}?table=k&time=t&dims=cat&measure=v&where=cat%3D'a+b'"
        )
        loaded = source.read()
        # '+' must reach SQLite verbatim, not decode to a space.
        assert set(loaded.column("cat")) == {"a+b"}
        assert loaded.column("v").tolist() == [1.0, 3.0]

    def test_bad_aggregate_does_not_trigger_full_reingest(self, tmp_path, canonical):
        path = tmp_path / "snap.npz"
        write_npz(canonical, path)

        class _NoRead(NpzSource):
            def read(self):  # pragma: no cover - failing is the assertion
                raise AssertionError("misconfiguration must not fall back")

        with pytest.raises(ReproError, match="bogus"):
            load_or_build_from_source(
                None, _NoRead(path), ["cat"], "sales", aggregate="bogus"
            )
