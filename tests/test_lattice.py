"""Unit, negative-path and concurrency tests for the rollup-lattice tier.

The metamorphic equivalence harness (routed == direct, derived == scratch,
single-scan == N independent builds, over random relations) lives in
``tests/test_properties.py``; this module pins the tier's contracts:

- spec parsing / validation and the greedy root planner;
- derivability rules and the derive error paths;
- manifest round-trips and the **loud-failure** contract (a corrupt
  manifest or a fingerprint mismatch raises
  :class:`~repro.exceptions.QueryError` — never a silent rebuild);
- router decisions (exact / derived / miss), the ``lattice_miss``
  counters and the promotion policy;
- the single-scan multi-cube ingestion entry point;
- session + registry integration, including the single-flight guarantee
  that N concurrent cold requests trigger exactly one derivation;
- the ``repro lattice build|inspect`` CLI and ``explain --lattice``.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.cache import MANIFEST_SUFFIX, RollupCache
from repro.cube.datacube import ExplanationCube
from repro.datasets.base import Dataset
from repro.exceptions import ExplanationError, QueryError
from repro.lattice import (
    LatticeManifest,
    LatticeRouter,
    RollupSpec,
    build_lattice,
    can_derive,
    covering_aggregate,
    default_lattice,
    derive_rollup,
    lattice_fingerprint,
    parse_rollup_spec,
    plan_roots,
    rollup_key,
    spec_of_cube,
)
from repro.relation.csvio import write_csv
from repro.serve.registry import DatasetSpec, SessionRegistry
from tests.conftest import two_attr_relation


def spec(dims=("a", "b"), measure="m", aggregate="sum", max_order=3, **kw):
    return RollupSpec(dims=tuple(dims), measure=measure, aggregate=aggregate, max_order=max_order, **kw)


def assert_cubes_identical(left, right):
    assert left.labels == right.labels
    assert left.explanations == right.explanations
    assert left.supports.tobytes() == right.supports.tobytes()
    assert left.overall_values.tobytes() == right.overall_values.tobytes()
    assert left.included_values.tobytes() == right.included_values.tobytes()
    assert left.excluded_values.tobytes() == right.excluded_values.tobytes()


# ----------------------------------------------------------------------
# Specs and planning
# ----------------------------------------------------------------------
class TestRollupSpec:
    def test_dims_are_normalized_to_sorted_order(self):
        assert spec(dims=("b", "a")).dims == ("a", "b")
        assert spec(dims=("b", "a")) == spec(dims=("a", "b"))

    def test_empty_dims_rejected(self):
        with pytest.raises(QueryError, match="at least one dimension"):
            spec(dims=())

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(Exception):
            spec(aggregate="median-of-medians")

    def test_bad_max_order_rejected(self):
        with pytest.raises(QueryError, match="max_order"):
            spec(max_order=0)

    def test_effective_order_clamps_to_dims(self):
        assert spec(dims=("a",), max_order=3).effective_order == 1
        assert spec(dims=("a", "b"), max_order=1).effective_order == 1

    def test_describe(self):
        assert spec(aggregate="var").describe() == "a,b@var"

    def test_parse_round_trip(self):
        parsed = parse_rollup_spec("b, a @ var", "m", max_order=2)
        assert parsed == spec(aggregate="var", max_order=2)
        assert parse_rollup_spec("a,b", "m", aggregate="avg").aggregate == "avg"

    def test_parse_rejects_empty_dims(self):
        with pytest.raises(QueryError, match="no dimensions"):
            parse_rollup_spec("@sum", "m")

    def test_default_lattice_is_full_shape_plus_singles(self):
        specs = default_lattice(("b", "a"), "m", aggregate="avg")
        assert specs[0].dims == ("a", "b")
        assert {s.dims for s in specs} == {("a", "b"), ("a",), ("b",)}
        # A single-dimension query collapses to one spec, not a duplicate.
        assert len(default_lattice(("a",), "m")) == 1

    def test_rollup_key_matches_classic_cache_key(self):
        from repro.cube.cache import cube_key

        relation = two_attr_relation()
        classic = cube_key(relation, "m", ("a", "b"), aggregate="sum", max_order=3, deduplicate=True)
        assert rollup_key(relation.fingerprint(), spec(), "t") == classic


class TestPlanning:
    def test_default_lattice_has_one_root(self):
        roots, derived_from = plan_roots(default_lattice(("a", "b"), "m", aggregate="var"))
        assert roots == [spec(aggregate="var")]
        assert set(derived_from) == {spec(dims=("a",), aggregate="var"), spec(dims=("b",), aggregate="var")}
        assert all(root == spec(aggregate="var") for root in derived_from.values())

    def test_wider_aggregate_covers_narrower(self):
        roots, derived_from = plan_roots([spec(aggregate="sum"), spec(aggregate="var")])
        assert roots == [spec(aggregate="var")]
        assert derived_from[spec(aggregate="sum")] == spec(aggregate="var")

    def test_disjoint_dims_need_two_roots(self):
        roots, _ = plan_roots([spec(dims=("a",)), spec(dims=("b",))])
        assert len(roots) == 2

    def test_duplicates_collapse(self):
        roots, derived_from = plan_roots([spec(), spec(), spec()])
        assert roots == [spec()] and not derived_from

    def test_covering_aggregate(self):
        assert covering_aggregate(["sum"]) == "sum"
        assert covering_aggregate(["sum", "count"]) == "avg"
        assert covering_aggregate(["avg", "sum"]) == "avg"
        assert covering_aggregate(["var", "sum"]) == "var"
        with pytest.raises(QueryError):
            covering_aggregate(["sum", "made-up"])


# ----------------------------------------------------------------------
# Derivation
# ----------------------------------------------------------------------
class TestDerive:
    def test_can_derive_rules(self):
        fine = spec(aggregate="var")
        assert can_derive(fine, spec(dims=("a",), aggregate="sum"))
        assert can_derive(fine, fine)
        # dims must be a subset of the source's
        assert not can_derive(spec(dims=("a",)), spec(dims=("a", "b")))
        # components must be covered: sum holds no counts
        assert not can_derive(spec(aggregate="sum"), spec(aggregate="count"))
        assert not can_derive(spec(aggregate="avg"), spec(aggregate="var"))
        # measure and deduplicate must match exactly
        assert not can_derive(fine, spec(measure="other", aggregate="sum"))
        assert not can_derive(fine, spec(aggregate="sum", deduplicate=False))
        # a coarser source cannot serve a deeper conjunction order
        assert not can_derive(spec(max_order=1), spec(max_order=2))
        # ... but raw max_order above the dim count is clamped, not compared
        assert can_derive(spec(max_order=2), spec(max_order=5))

    def test_derive_requires_ledger(self):
        relation = two_attr_relation()
        cube = ExplanationCube(relation, ("a", "b"), "m", appendable=False)
        with pytest.raises(ExplanationError, match="ledger|append"):
            derive_rollup(cube, spec(dims=("a",)))

    def test_derive_rejects_uncoverable_target(self):
        relation = two_attr_relation()
        cube = ExplanationCube(relation, ("a", "b"), "m", appendable=True)
        with pytest.raises(QueryError):
            derive_rollup(cube, spec(aggregate="count"))

    def test_derived_cube_matches_scratch_build(self):
        relation = two_attr_relation()
        fine = ExplanationCube(relation, ("a", "b"), "m", aggregate="var", appendable=True)
        assert spec_of_cube(fine) == spec(aggregate="var")
        for target in (spec(dims=("a",), aggregate="avg"), spec(aggregate="sum")):
            derived = derive_rollup(fine, target)
            scratch = ExplanationCube(
                relation, target.dims, "m", aggregate=target.aggregate, max_order=target.max_order
            )
            assert_cubes_identical(derived, scratch)

    def test_derived_cube_keeps_its_own_ledger(self):
        """A derived rollup can itself serve further derivations."""
        relation = two_attr_relation()
        fine = ExplanationCube(relation, ("a", "b"), "m", aggregate="var", appendable=True)
        mid = derive_rollup(fine, spec(aggregate="avg"))
        assert mid.appendable
        coarse = derive_rollup(mid, spec(dims=("a",), aggregate="sum"))
        scratch = ExplanationCube(relation, ("a",), "m", aggregate="sum")
        assert_cubes_identical(coarse, scratch)


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_round_trip(self):
        manifest = (
            LatticeManifest(fingerprint="fp", time_attr="t")
            .with_entry(spec(aggregate="var"), "built")
            .with_entry(spec(dims=("a",)), "derived")
        )
        loaded = LatticeManifest.from_payload(manifest.to_payload(), expected_fingerprint="fp")
        assert loaded == manifest
        assert spec(dims=("a",)) in loaded
        assert loaded.get(spec(dims=("a",))).origin == "derived"

    def test_with_entry_replaces_same_spec(self):
        manifest = LatticeManifest(fingerprint="fp", time_attr="t").with_entry(spec(), "built")
        manifest = manifest.with_entry(spec(), "promoted")
        assert len(manifest.entries) == 1
        assert manifest.entries[0].origin == "promoted"

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"format": 999, "fingerprint": "fp", "time_attr": "t", "rollups": []},
            {"format": 1, "fingerprint": "fp", "time_attr": "t", "rollups": [{"dims": []}]},
            {"format": 1, "fingerprint": "fp", "time_attr": "t", "rollups": "nope"},
        ],
    )
    def test_malformed_payloads_raise_query_error(self, payload):
        with pytest.raises(QueryError):
            LatticeManifest.from_payload(payload, expected_fingerprint="fp")

    def test_fingerprint_mismatch_raises(self):
        payload = LatticeManifest(fingerprint="other", time_attr="t").to_payload()
        with pytest.raises(QueryError, match="fingerprint"):
            LatticeManifest.from_payload(payload, expected_fingerprint="fp")


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
class TestBuildLattice:
    def test_single_scan_builds_roots_and_derives_the_rest(self, tmp_path):
        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        specs = default_lattice(("a", "b"), "m", aggregate="var")
        cubes, report = build_lattice(relation, specs, cache=cache)
        assert set(cubes) == set(specs)
        assert report.built == (spec(aggregate="var"),)
        assert set(report.derived) == {
            spec(dims=("a",), aggregate="var"),
            spec(dims=("b",), aggregate="var"),
        }
        assert report.rows == relation.n_rows
        # 3 cubes + 1 manifest persisted
        assert report.stored == 4
        for one in specs:
            assert cache.load(rollup_key(report.fingerprint, one, "t")) is not None

    def test_empty_specs_rejected(self):
        with pytest.raises(QueryError):
            build_lattice(two_attr_relation(), [])

    def test_empty_relation_rejected(self):
        relation = two_attr_relation().take(np.arange(0))
        with pytest.raises(QueryError):
            build_lattice(relation, [spec()])

    def test_rebuild_merges_with_existing_manifest(self, tmp_path):
        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        build_lattice(relation, [spec(aggregate="var")], cache=cache)
        build_lattice(relation, [spec(aggregate="avg")], cache=cache)
        router = LatticeRouter.for_relation(relation, cache=cache)
        assert {entry.spec for entry in router.manifest.entries} == {
            spec(aggregate="var"),
            spec(aggregate="avg"),
        }

    def test_rebuild_overwrites_a_corrupt_manifest(self, tmp_path):
        """build is the recovery path: it must not choke on corruption."""
        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        cache.manifest_path_for(lattice_fingerprint(relation)).write_text("{not json")
        build_lattice(relation, [spec()], cache=cache)
        router = LatticeRouter.for_relation(relation, cache=cache)
        cube, info = router.route(spec())
        assert info.decision == "exact" and cube is not None


# ----------------------------------------------------------------------
# Router: decisions, loud failures, promotion
# ----------------------------------------------------------------------
class TestRouter:
    def _built(self, tmp_path, specs=None, aggregate="var"):
        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        specs = specs or default_lattice(("a", "b"), "m", aggregate=aggregate)
        build_lattice(relation, specs, cache=cache)
        return relation, cache

    def test_exact_and_derived_and_miss(self, tmp_path):
        relation, cache = self._built(tmp_path)
        router = LatticeRouter.for_relation(relation, cache=cache)
        cube, info = router.route(spec(aggregate="var"))
        assert info.decision == "exact" and cube is not None
        cube, info = router.route(spec(dims=("a",), aggregate="sum"))
        assert info.decision == "derived"
        assert info.served_by == spec(dims=("a",), aggregate="var")
        assert_cubes_identical(
            cube, ExplanationCube(relation, ("a",), "m", aggregate="sum")
        )
        missing = spec(deduplicate=False)
        cube, info = router.route(missing)
        assert cube is None and info.decision == "miss"
        stats = router.stats()
        assert stats["exact_hits"] == 1
        assert stats["derived_hits"] == 1 and stats["derivations"] == 1
        assert stats["lattice_miss"] == 1

    def test_derivation_is_persisted_for_the_next_process(self, tmp_path):
        relation, cache = self._built(tmp_path)
        router = LatticeRouter.for_relation(relation, cache=cache)
        router.route(spec(aggregate="sum"))
        fresh = LatticeRouter.for_relation(relation, cache=cache)
        cube, info = fresh.route(spec(aggregate="sum"))
        assert info.decision == "exact" and cube is not None
        assert fresh.manifest.get(spec(aggregate="sum")).origin == "derived"

    def test_corrupt_manifest_raises_not_silent_rebuild(self, tmp_path):
        relation, cache = self._built(tmp_path)
        cache.manifest_path_for(lattice_fingerprint(relation)).write_text("{not json")
        with pytest.raises(QueryError):
            LatticeRouter.for_relation(relation, cache=cache)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        relation, cache = self._built(tmp_path)
        fingerprint = lattice_fingerprint(relation)
        payload = cache.load_manifest_payload(fingerprint)
        payload["fingerprint"] = "someone-elses-data"
        cache.store_manifest_payload(fingerprint, payload)
        with pytest.raises(QueryError, match="fingerprint"):
            LatticeRouter.for_relation(relation, cache=cache)
        with pytest.raises(QueryError, match="fingerprint"):
            LatticeRouter(
                "fp-a", "t", manifest=LatticeManifest(fingerprint="fp-b", time_attr="t")
            )

    def test_listed_but_unloadable_rollup_raises(self, tmp_path):
        relation, cache = self._built(tmp_path)
        fingerprint = lattice_fingerprint(relation)
        cache.path_for(rollup_key(fingerprint, spec(aggregate="var"), "t")).unlink()
        router = LatticeRouter.for_relation(relation, cache=cache)
        with pytest.raises(QueryError, match="rebuild the lattice"):
            router.route(spec(aggregate="var"))

    def test_promotion_after_repeated_misses(self):
        relation = two_attr_relation()
        router = LatticeRouter.for_relation(relation, promote_after=2)
        shape = spec(aggregate="sum")
        built = ExplanationCube(relation, ("a", "b"), "m", appendable=True)
        assert router.route(shape)[1].decision == "miss"
        assert not router.record_build(shape, built)  # 1 miss < promote_after
        assert router.route(shape)[1].decision == "miss"
        assert router.record_build(shape, built)  # popular now
        cube, info = router.route(shape)
        assert info.decision == "exact" and cube is built
        stats = router.stats()
        assert stats["promotions"] == 1 and stats["lattice_miss"] == 2
        # Promoted shapes serve derivations like any lattice member.
        assert router.route(spec(dims=("a",)))[1].decision == "derived"

    def test_ledgerless_cubes_are_not_promoted(self):
        relation = two_attr_relation()
        router = LatticeRouter.for_relation(relation, promote_after=1)
        shape = spec(aggregate="sum")
        router.route(shape)
        assert not router.record_build(
            shape, ExplanationCube(relation, ("a", "b"), "m", appendable=False)
        )

    def test_promote_after_validation(self):
        with pytest.raises(QueryError):
            LatticeRouter("fp", "t", promote_after=0)


# ----------------------------------------------------------------------
# Single-scan multi-cube ingestion
# ----------------------------------------------------------------------
class TestScanCubesFromSource:
    def test_one_scan_matches_independent_builds(self, tmp_path):
        from repro.store import NpzSource, scan_cubes_from_source, write_npz

        relation = two_attr_relation()
        write_npz(relation, tmp_path / "r.npz")
        source = NpzSource(tmp_path / "r.npz")
        queries = [
            {"explain_by": ("a", "b"), "measure": "m", "aggregate": "var"},
            {"explain_by": ("a",), "measure": "m", "aggregate": "sum", "max_order": 2},
        ]
        cubes, report = scan_cubes_from_source(source, queries, chunk_rows=13)
        assert report.out_of_core and report.chunks > 1
        assert report.rows == relation.n_rows
        assert_cubes_identical(
            cubes[0], ExplanationCube(relation, ("a", "b"), "m", aggregate="var")
        )
        assert_cubes_identical(
            cubes[1], ExplanationCube(relation, ("a",), "m", aggregate="sum", max_order=2)
        )

    def test_empty_query_list_rejected(self, tmp_path):
        from repro.store import NpzSource, scan_cubes_from_source, write_npz

        write_npz(two_attr_relation(), tmp_path / "r.npz")
        with pytest.raises(QueryError):
            scan_cubes_from_source(NpzSource(tmp_path / "r.npz"), [])


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
class TestSessionFromLattice:
    def test_requires_exactly_one_data_binding(self):
        relation = two_attr_relation()
        router = LatticeRouter.for_relation(relation)
        with pytest.raises(QueryError):
            ExplainSession.from_lattice(router)
        with pytest.raises(QueryError):
            ExplainSession.from_lattice(router, relation=relation, source="csv:x.csv")

    def test_exact_route_prepares_without_building(self, tmp_path):
        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        build_lattice(relation, default_lattice(("a", "b"), "m"), cache=cache)
        router = LatticeRouter.for_relation(relation, cache=cache)
        session = ExplainSession.from_lattice(
            router, relation=relation, measure="m", explain_by=("a", "b")
        )
        assert session.prepared
        assert session.route_info.decision == "exact"
        result = session.query().run()
        direct = ExplainSession(relation, measure="m", explain_by=("a", "b")).query().run()
        assert result.k == direct.k and result.boundaries == direct.boundaries

    def test_miss_falls_back_and_feeds_promotion(self):
        relation = two_attr_relation()
        router = LatticeRouter.for_relation(relation)  # empty lattice
        decisions = []
        for _ in range(3):
            session = ExplainSession.from_lattice(
                router, relation=relation, measure="m", explain_by=("a", "b")
            )
            assert session.prepared
            decisions.append(session.route_info.decision)
        # miss, miss (promoted on record_build), exact from then on
        assert decisions == ["miss", "miss", "exact"]
        assert router.stats()["promotions"] == 1


# ----------------------------------------------------------------------
# Registry integration + the single-flight derivation guarantee
# ----------------------------------------------------------------------
def lattice_dataset(relation):
    return Dataset(
        name="regime",
        relation=relation,
        measure="m",
        explain_by=("a", "b"),
        aggregate="sum",
    )


class TestRegistryLattice:
    def test_lattice_spec_routes_and_counts(self, tmp_path):
        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        config = ExplainConfig.optimized()
        build_lattice(
            relation,
            [spec(aggregate="var", max_order=config.max_order)],
            cache=cache,
        )
        registry = SessionRegistry(
            [DatasetSpec.from_dataset(lattice_dataset(relation), config=config, lattice=True)],
            cache_dir=str(tmp_path),
        )
        session = registry.session("regime")
        assert session.route_info.decision == "derived"
        stats = registry.stats()
        assert stats["lattice"]["derived_hits"] == 1
        assert stats["lattice"]["routers"] == 1

    def test_concurrent_cold_requests_trigger_exactly_one_derivation(self, tmp_path):
        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        config = ExplainConfig.optimized()
        build_lattice(
            relation,
            [spec(aggregate="var", max_order=config.max_order)],
            cache=cache,
        )
        release = threading.Event()
        loads = []

        def slow_loader():
            loads.append(1)
            release.wait(timeout=10.0)
            return lattice_dataset(relation)

        registry = SessionRegistry(
            [DatasetSpec(name="regime", loader=slow_loader, config=config, lattice=True)],
            cache_dir=str(tmp_path),
        )
        sessions: list = []
        threads = [
            threading.Thread(target=lambda: sessions.append(registry.session("regime")))
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=15.0)
        assert len(sessions) == 6
        assert all(session is sessions[0] for session in sessions)
        assert len(loads) == 1, "cold lattice prepares must coalesce"
        lattice_stats = registry.lattice_stats()
        assert lattice_stats["derivations"] == 1, (
            "N concurrent requests for one un-prepared shape must pay "
            "exactly one derivation"
        )
        assert lattice_stats["derived_hits"] == 1

    def test_stats_endpoint_exposes_lattice_counters(self, tmp_path):
        import urllib.request

        from repro.serve.http import make_app

        relation = two_attr_relation()
        cache = RollupCache(tmp_path)
        build_lattice(
            relation,
            default_lattice(("a", "b"), "m", max_order=ExplainConfig.optimized().max_order),
            cache=cache,
        )
        app = make_app(
            datasets=[], port=0, cache_dir=str(tmp_path), lattice=True, access_log=False
        )
        app.registry.register(
            DatasetSpec.from_dataset(lattice_dataset(relation), lattice=True)
        )
        app.start()
        try:
            with urllib.request.urlopen(f"{app.url}/explain?dataset=regime") as response:
                assert json.loads(response.read())["k"] >= 1
            with urllib.request.urlopen(f"{app.url}/stats") as response:
                stats = json.loads(response.read())
            with urllib.request.urlopen(f"{app.url}/metrics") as response:
                exposition = response.read().decode("utf-8")
        finally:
            app.shutdown()
        lattice = stats["registry"]["lattice"]
        assert lattice["exact_hits"] + lattice["derived_hits"] >= 1
        # The routing decision also lands on the Prometheus surface.
        from repro.obs.metrics import parse_exposition

        samples = parse_exposition(exposition)
        routed = sum(
            value
            for (name, labels), value in samples.items()
            if name == "repro_lattice_routes_total"
            and dict(labels)["decision"] in ("exact", "derived")
        )
        assert routed >= 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture()
def csv_query(tmp_path):
    """A small CSV plus the flags every lattice CLI invocation needs."""
    relation = two_attr_relation()
    path = tmp_path / "r.csv"
    write_csv(relation, path)
    flags = [
        "--csv", str(path),
        "--time", "t",
        "--dimensions", "a,b",
        "--measure", "m",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    return relation, flags


class TestLatticeCli:
    def test_build_then_inspect_then_routed_explain(self, csv_query, capsys):
        from repro.cli import main

        relation, flags = csv_query
        assert main(["lattice", "build", *flags]) == 0
        out = capsys.readouterr().out
        assert "1 built in one scan" in out and "stored 3 rollup(s) + manifest" in out

        assert main(["lattice", "inspect", "--cache-dir", flags[-1]]) == 0
        out = capsys.readouterr().out
        assert "a,b@sum" in out and "[built]" in out

        assert main(["explain", *flags, "--lattice"]) == 0
        out = capsys.readouterr().out
        assert "lattice: exact from a,b@sum" in out

        assert main(["explain", *flags, "--lattice", "--explain-by", "a", "--aggregate", "sum"]) == 0
        out = capsys.readouterr().out
        assert "lattice: exact from a@sum" in out

    def test_explicit_rollups_flag(self, csv_query, capsys):
        from repro.cli import main

        _, flags = csv_query
        assert main(["lattice", "build", *flags, "--rollups", "a,b@var;a@avg"]) == 0
        out = capsys.readouterr().out
        assert "a,b@var" in out and "a@avg" in out and "derived" in out

    def test_explain_lattice_requires_cache_dir(self, csv_query, capsys):
        from repro.cli import main

        _, flags = csv_query
        no_cache = flags[:-2]  # strip --cache-dir
        assert main(["explain", *no_cache, "--lattice"]) == 2
        assert "--lattice needs --cache-dir" in capsys.readouterr().err

    def test_inspect_reports_corrupt_manifests(self, csv_query, capsys):
        from repro.cli import main

        _, flags = csv_query
        cache_dir = flags[-1]
        assert main(["lattice", "build", *flags]) == 0
        capsys.readouterr()
        next(RollupCache(cache_dir).directory.glob(f"*{MANIFEST_SUFFIX}")).write_text("{nope")
        assert main(["lattice", "inspect", "--cache-dir", cache_dir]) == 1
        captured = capsys.readouterr()
        assert "unreadable" in captured.err

    def test_serve_parser_accepts_lattice_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--lattice", "--max-requests", "1"])
        assert args.lattice is True
        args = build_parser().parse_args(["explain", "--dataset", "sp500", "--lattice"])
        assert args.lattice is True
