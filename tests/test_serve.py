"""Tests for the serving tier (repro.serve).

Covers the four tentpole pieces — the session registry (LRU, TTL, memory
budget, single-flight coalescing), the sharded parallel cold build
(byte-identity with one-shot, cache feeding, degraded serial path), the
query scheduler (in-flight dedupe), and the JSON-over-HTTP API (every
endpoint, error mapping, and parity with the CLI's answers) — plus the
``repro serve`` CLI verb end-to-end in a subprocess.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.cache import RollupCache, cube_key
from repro.cube.datacube import ExplanationCube, merge_shard_cubes
from repro.datasets.base import Dataset
from repro.exceptions import QueryError
from repro.serve.http import ServeApp, make_app
from repro.serve.registry import DatasetSpec, SessionRegistry, session_nbytes
from repro.serve.scheduler import QueryScheduler
from repro.serve.sharding import ShardedBuilder, split_time_shards
from tests.conftest import build_relation, regime_relation, two_attr_relation


def make_dataset(name: str = "regime", n: int = 24) -> Dataset:
    return Dataset(
        name=name,
        relation=regime_relation(n=n),
        measure="sales",
        explain_by=("cat",),
        aggregate="sum",
    )


def spec_for(dataset: Dataset, **kwargs) -> DatasetSpec:
    kwargs.setdefault("config", ExplainConfig(k=2))
    return DatasetSpec.from_dataset(dataset, **kwargs)


def _get_json(url: str):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


# ----------------------------------------------------------------------
# Time sharding
# ----------------------------------------------------------------------
class TestSplitTimeShards:
    def test_partitions_rows_by_contiguous_label_ranges(self):
        relation = two_attr_relation(n=16)
        shards = split_time_shards(relation, None, 4)
        assert len(shards) == 4
        assert sum(s.n_rows for s in shards) == relation.n_rows
        previous_last = None
        for shard in shards:
            labels = sorted(set(shard.column("t")))
            assert labels
            if previous_last is not None:
                assert labels[0] > previous_last
            previous_last = labels[-1]

    def test_clamps_to_label_count(self):
        relation = two_attr_relation(n=4)
        shards = split_time_shards(relation, None, 99)
        assert len(shards) == 4
        assert all(shard.n_rows > 0 for shard in shards)

    def test_single_shard_returns_relation_unchanged(self):
        relation = regime_relation()
        (shard,) = split_time_shards(relation, None, 1)
        assert shard is relation


class TestShardedBuilder:
    def _assert_identical(self, left: ExplanationCube, right: ExplanationCube):
        assert left.labels == right.labels
        assert left.explanations == right.explanations
        assert left.supports.tobytes() == right.supports.tobytes()
        assert left.overall_values.tobytes() == right.overall_values.tobytes()
        assert left.included_values.tobytes() == right.included_values.tobytes()
        assert left.excluded_values.tobytes() == right.excluded_values.tobytes()

    def test_serial_sharded_build_is_byte_identical(self):
        relation = two_attr_relation(n=20)
        one_shot = ExplanationCube(relation, ["a", "b"], "m")
        builder = ShardedBuilder(n_shards=3, max_workers=1, min_rows_per_shard=1)
        cube = builder.build(relation, ["a", "b"], "m")
        assert builder.last_report.n_shards == 3
        assert not builder.last_report.parallel
        self._assert_identical(cube, one_shot)
        assert cube.appendable

    def test_process_pool_build_is_byte_identical(self):
        relation = two_attr_relation(n=20)
        one_shot = ExplanationCube(relation, ["a", "b"], "m")
        builder = ShardedBuilder(n_shards=2, max_workers=2, min_rows_per_shard=1)
        cube = builder.build(relation, ["a", "b"], "m")
        assert builder.last_report.n_shards == 2
        self._assert_identical(cube, one_shot)

    def test_small_relations_build_one_shot(self):
        relation = regime_relation(n=6)
        builder = ShardedBuilder(n_shards=4, max_workers=1)  # default min rows
        builder.build(relation, ["cat"], "sales")
        assert builder.last_report.n_shards == 1

    def test_feeds_and_reuses_the_rollup_cache(self, tmp_path):
        relation = two_attr_relation(n=16)
        cache = RollupCache(tmp_path / "rollups")
        builder = ShardedBuilder(n_shards=2, max_workers=1, min_rows_per_shard=1)
        built = builder.build(relation, ["a", "b"], "m", cache=cache)
        assert not builder.last_report.cache_hit
        # The stored entry is the one a one-shot load_or_build would hit.
        key = cube_key(relation, "m", ["a", "b"])
        assert cache.load(key) is not None
        again = builder.build(relation, ["a", "b"], "m", cache=cache)
        assert builder.last_report.cache_hit
        self._assert_identical(again, built)


class TestMergeShardCubes:
    def _day_cube(self, days) -> ExplanationCube:
        rows = {"t": [], "cat": [], "m": []}
        for day in days:
            for cat in ("x", "y"):
                rows["t"].append(f"d{day:02d}")
                rows["cat"].append(cat)
                rows["m"].append(float(day + (1 if cat == "x" else 2)))
        relation = build_relation(
            rows, dimensions=["cat"], measures=["m"], time="t"
        )
        return ExplanationCube(relation, ["cat"], "m")

    def test_empty_shard_list_raises(self):
        with pytest.raises(QueryError, match="empty"):
            merge_shard_cubes([])

    def test_single_shard_round_trips_without_aliasing(self):
        cube = self._day_cube(range(4))
        merged = merge_shard_cubes([cube])
        assert merged is not cube
        assert merged.labels == cube.labels
        assert merged.explanations == cube.explanations
        assert merged.included_values.tobytes() == cube.included_values.tobytes()
        # No shared ledger state: appending to the merged cube must leave
        # the input untouched.
        before = cube.included_values.tobytes()
        merged.append(
            build_relation(
                {"t": ["d09"], "cat": ["x"], "m": [5.0]},
                dimensions=["cat"],
                measures=["m"],
                time="t",
            )
        )
        assert cube.included_values.tobytes() == before

    def test_out_of_order_shards_raise(self):
        early, late = self._day_cube(range(0, 3)), self._day_cube(range(3, 6))
        with pytest.raises(QueryError, match="sort strictly after"):
            merge_shard_cubes([late, early])

    def test_overlapping_shards_raise(self):
        left, right = self._day_cube(range(0, 4)), self._day_cube(range(3, 6))
        with pytest.raises(QueryError, match="disjoint"):
            merge_shard_cubes([left, right])

    def test_three_ordered_shards_match_one_shot(self):
        merged = merge_shard_cubes(
            [self._day_cube(range(0, 2)), self._day_cube(range(2, 4)), self._day_cube(range(4, 6))]
        )
        one_shot = self._day_cube(range(6))
        assert merged.labels == one_shot.labels
        assert merged.included_values.tobytes() == one_shot.included_values.tobytes()
        assert merged.excluded_values.tobytes() == one_shot.excluded_values.tobytes()


# ----------------------------------------------------------------------
# SessionRegistry
# ----------------------------------------------------------------------
class TestSessionRegistry:
    def test_unknown_dataset_raises(self):
        registry = SessionRegistry()
        with pytest.raises(QueryError, match="unknown dataset"):
            registry.session("nope")

    def test_sessions_are_cached_and_counted(self):
        calls = []
        dataset = make_dataset()
        spec = DatasetSpec(
            name="regime",
            loader=lambda: calls.append(1) or dataset,
            config=ExplainConfig(k=2),
        )
        registry = SessionRegistry([spec])
        first = registry.session("regime")
        second = registry.session("regime")
        assert first is second
        assert calls == [1]
        stats = registry.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["resident_sessions"] == 1
        assert stats["memory_bytes"] == session_nbytes(first) > 0

    def test_cold_build_is_single_flight(self):
        release = threading.Event()
        calls = []
        dataset = make_dataset()

        def slow_loader():
            calls.append(1)
            release.wait(timeout=10.0)
            return dataset

        registry = SessionRegistry(
            [DatasetSpec(name="regime", loader=slow_loader, config=ExplainConfig(k=2))]
        )
        sessions: list = []
        threads = [
            threading.Thread(target=lambda: sessions.append(registry.session("regime")))
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=15.0)
        assert len(calls) == 1, "concurrent cold requests must coalesce to one prepare"
        assert len(sessions) == 6
        assert all(session is sessions[0] for session in sessions)
        stats = registry.stats()
        assert stats["coalesced"] >= 1
        assert stats["misses"] >= 1

    def test_ttl_expires_idle_sessions(self):
        now = [0.0]
        registry = SessionRegistry(
            [spec_for(make_dataset())], ttl_seconds=10.0, clock=lambda: now[0]
        )
        first = registry.session("regime")
        now[0] = 5.0
        assert registry.session("regime") is first  # still fresh
        now[0] = 20.0
        second = registry.session("regime")
        assert second is not first
        assert registry.stats()["expirations"] == 1

    def test_sweep_drops_expired_sessions(self):
        now = [0.0]
        registry = SessionRegistry(
            [spec_for(make_dataset())], ttl_seconds=1.0, clock=lambda: now[0]
        )
        registry.session("regime")
        assert registry.sweep() == 0
        now[0] = 5.0
        assert registry.sweep() == 1
        assert registry.stats()["resident_sessions"] == 0

    def test_memory_budget_evicts_lru_but_keeps_newest(self):
        specs = [
            spec_for(make_dataset(name=f"d{i}")) for i in range(3)
        ]
        registry = SessionRegistry(specs, memory_budget_bytes=1)  # everything over
        registry.session("d0")
        registry.session("d1")
        registry.session("d2")
        stats = registry.stats()
        # Each admit evicts the previous resident; the newest survives
        # even though it alone exceeds the budget.
        assert stats["resident_sessions"] == 1
        assert stats["evictions"] == 2
        assert registry.describe()[-1]["loaded"]

    def test_lru_order_follows_use_not_admission(self):
        big_budget = 10**9
        registry = SessionRegistry(
            [spec_for(make_dataset(name=name)) for name in ("a", "b")],
            memory_budget_bytes=big_budget,
        )
        session_a = registry.session("a")
        registry.session("b")
        registry.session("a")  # refresh a: b is now least recently used
        # Shrink the effective budget by registering a third dataset and
        # admitting it with a tiny budget.
        registry._memory_budget = 1  # type: ignore[attr-defined]
        registry.register(spec_for(make_dataset(name="c")))
        registry.session("c")
        names = [row["name"] for row in registry.describe() if row["loaded"]]
        assert names == ["c"]
        # "a" survived longer than "b" in the eviction sequence: rebuild
        # and check the counters add up.
        assert registry.stats()["evictions"] == 2
        assert session_a.prepared

    def test_describe_lists_loaded_metadata(self):
        registry = SessionRegistry([spec_for(make_dataset())])
        rows = registry.describe()
        assert rows[0] == {"name": "regime", "description": "", "loaded": False}
        registry.session("regime")
        row = registry.describe()[0]
        assert row["loaded"] and row["epsilon"] > 0 and row["memory_bytes"] > 0

    def test_sharded_builder_cold_path_matches_plain_prepare(self, tmp_path):
        dataset = make_dataset(n=30)
        plain = SessionRegistry([spec_for(dataset)])
        sharded = SessionRegistry(
            [spec_for(dataset)],
            builder=ShardedBuilder(n_shards=3, max_workers=1, min_rows_per_shard=1),
            cache_dir=str(tmp_path / "rollups"),
        )
        expected = plain.session("regime").explain()
        observed = sharded.session("regime").explain()
        assert [s.describe() for s in observed.segments] == [
            s.describe() for s in expected.segments
        ]
        # The sharded build fed the shared rollup cache.
        assert list((tmp_path / "rollups").glob("*.npz"))


# ----------------------------------------------------------------------
# QueryScheduler
# ----------------------------------------------------------------------
class TestQueryScheduler:
    def test_identical_inflight_queries_share_one_future(self):
        release = threading.Event()
        dataset = make_dataset()

        def slow_loader():
            release.wait(timeout=10.0)
            return dataset

        registry = SessionRegistry(
            [DatasetSpec(name="regime", loader=slow_loader, config=ExplainConfig(k=2))]
        )
        scheduler = QueryScheduler(registry, max_workers=4)
        try:
            first = scheduler.submit("explain", "regime")
            second = scheduler.submit("explain", "regime")
            different = scheduler.submit("explain", "regime", k=3)
            assert first is second
            assert different is not first
            release.set()
            assert first.result(timeout=30.0).k == 2
            assert different.result(timeout=30.0).k == 3
            stats = scheduler.stats()
            assert stats["coalesced"] == 1
            assert stats["submitted"] == 2
        finally:
            scheduler.shutdown()

    def test_key_is_dropped_after_completion(self):
        registry = SessionRegistry([spec_for(make_dataset())])
        scheduler = QueryScheduler(registry, max_workers=2)
        try:
            first = scheduler.submit("explain", "regime")
            first.result(timeout=30.0)
            second = scheduler.submit("explain", "regime")
            assert second is not first
            assert scheduler.stats()["inflight"] == 0 or second.result(timeout=30.0)
        finally:
            scheduler.shutdown()

    def test_diff_and_recommend_kinds(self):
        registry = SessionRegistry([spec_for(make_dataset())])
        scheduler = QueryScheduler(registry, max_workers=2)
        try:
            scored = scheduler.execute(
                "diff", "regime", start="t000", stop="t023", m=2
            )
            assert len(scored) <= 2 and scored[0].gamma >= 0
            ranked = scheduler.execute("recommend", "regime", m=1)
            assert ranked[0].attribute == "cat"
        finally:
            scheduler.shutdown()

    def test_bad_queries_fail_synchronously(self):
        registry = SessionRegistry([spec_for(make_dataset())])
        scheduler = QueryScheduler(registry, max_workers=1)
        try:
            with pytest.raises(QueryError, match="unknown query kind"):
                scheduler.submit("mutate", "regime")
            with pytest.raises(QueryError, match="unsupported parameter"):
                scheduler.submit("explain", "regime", nonsense=1)
            with pytest.raises(QueryError, match="requires both"):
                scheduler.submit("diff", "regime", start="t000")
        finally:
            scheduler.shutdown()

    def test_worker_errors_propagate_and_count(self):
        registry = SessionRegistry([spec_for(make_dataset())])
        scheduler = QueryScheduler(registry, max_workers=1)
        try:
            future = scheduler.submit("explain", "regime", start="no-such-label")
            with pytest.raises(QueryError):
                future.result(timeout=30.0)
            assert scheduler.stats()["errors"] == 1
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
@pytest.fixture
def app():
    registry = SessionRegistry([spec_for(make_dataset())])
    app = ServeApp(registry, QueryScheduler(registry, max_workers=4), port=0).start()
    yield app
    app.shutdown()


class TestHttpApi:
    def test_healthz(self, app):
        payload = _get_json(f"{app.url}/healthz")
        assert payload["ok"] is True
        # Build info rides along so multi-worker smokes can tell workers
        # apart: version, pid, worker id, uptime.
        from repro import __version__

        assert payload["version"] == __version__
        assert payload["pid"] > 0
        assert isinstance(payload["worker"], str) and payload["worker"]
        assert payload["uptime_seconds"] >= 0.0

    def test_datasets_endpoint(self, app):
        payload = _get_json(f"{app.url}/datasets")
        assert payload["datasets"][0]["name"] == "regime"

    def test_explain_matches_direct_session(self, app):
        payload = _get_json(f"{app.url}/explain?dataset=regime")
        direct = ExplainSession(
            regime_relation(),
            "sales",
            ["cat"],
            config=ExplainConfig(k=2),
        ).explain()
        assert payload["k"] == direct.k == 2
        assert payload["epsilon"] == direct.epsilon
        served = [
            (seg["start_label"], seg["stop_label"], [e["explanation"] for e in seg["explanations"]])
            for seg in payload["segments"]
        ]
        expected = [
            (
                seg.start_label,
                seg.stop_label,
                [repr(s.explanation) for s in seg.explanations],
            )
            for seg in direct.segments
        ]
        assert served == expected
        hexes = [
            e["gamma_hex"]
            for seg in payload["segments"]
            for e in seg["explanations"]
        ]
        assert hexes == [
            s.gamma.hex() for seg in direct.segments for s in seg.explanations
        ]

    def test_explain_window_and_overrides(self, app):
        payload = _get_json(
            f"{app.url}/explain?dataset=regime&start=t004&stop=t020&k=2&smoothing=3"
        )
        assert payload["k"] == 2
        assert payload["series"]["labels"][0] == "t004"
        assert payload["series"]["labels"][-1] == "t020"

    def test_diff_endpoint(self, app):
        payload = _get_json(
            f"{app.url}/diff?dataset=regime&start=t000&stop=t023&m=2"
        )
        explanations = [e["explanation"] for e in payload["explanations"]]
        assert explanations and all(e.startswith("cat=") for e in explanations)

    def test_recommend_endpoint(self, app):
        payload = _get_json(f"{app.url}/recommend?dataset=regime&m=1")
        assert payload["attributes"][0]["attribute"] == "cat"

    def test_stats_endpoint(self, app):
        _get_json(f"{app.url}/explain?dataset=regime")
        payload = _get_json(f"{app.url}/stats")
        assert payload["requests"] >= 1
        assert payload["registry"]["resident_sessions"] == 1
        assert payload["scheduler"]["submitted"] >= 1
        assert payload["uptime_seconds"] >= 0

    def test_unknown_dataset_is_404(self, app):
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"{app.url}/explain?dataset=nope")
        assert error.value.code == 404
        assert "registered" in json.loads(error.value.read().decode("utf-8"))

    def test_unknown_path_is_404(self, app):
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"{app.url}/frobnicate")
        assert error.value.code == 404

    def test_bad_parameter_is_400(self, app):
        for query in (
            "/explain?dataset=regime&k=banana",
            "/explain?dataset=regime&bogus=1",
            "/explain",
            "/diff?dataset=regime&start=t000",
        ):
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(f"{app.url}{query}")
            assert error.value.code == 400, query

    def test_concurrent_clients_get_identical_answers(self, app):
        url = f"{app.url}/explain?dataset=regime"
        payloads: list = []
        errors: list = []

        def hit():
            try:
                payloads.append(_get_json(url))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert len(payloads) == 8
        # Identical *answers*: wall-clock timings are excluded — a client
        # arriving after the coalesced flight completed legitimately
        # recomputes, and only its timings may differ.
        answers = [{k: v for k, v in p.items() if k != "timings"} for p in payloads]
        reference = json.dumps(answers[0], sort_keys=True)
        assert all(
            json.dumps(p, sort_keys=True) == reference for p in answers[1:]
        )
        stats = _get_json(f"{app.url}/stats")
        assert stats["registry"]["misses"] == 1  # one cold build for 8 clients

    def test_make_app_assembles_bundled_registry(self, tmp_path):
        app = make_app(
            datasets=["covid-total"],
            port=0,
            cache_dir=str(tmp_path / "rollups"),
            memory_budget_bytes=1 << 30,
            ttl_seconds=600.0,
            query_workers=2,
            build_shards=2,
            build_workers=1,
            access_log=False,
        ).start()
        try:
            names = _get_json(f"{app.url}/datasets")["datasets"]
            assert [row["name"] for row in names] == ["covid-total"]
            payload = _get_json(f"{app.url}/explain?dataset=covid-total")
            assert payload["segments"]
            stats = _get_json(f"{app.url}/stats")
            assert stats["registry"]["sharded_builds"] is True
            assert stats["registry"]["cache_dir"] == str(tmp_path / "rollups")
            # The sharded cold build fed the shared rollup cache.
            assert list((tmp_path / "rollups").glob("*.npz"))
        finally:
            app.shutdown()

    def test_max_requests_trips_the_breaker(self):
        registry = SessionRegistry([spec_for(make_dataset())])
        app = ServeApp(
            registry, QueryScheduler(registry), port=0, max_requests=2
        ).start()
        try:
            _get_json(f"{app.url}/healthz")
            _get_json(f"{app.url}/healthz")
            assert app.requests_served == 2
            app._thread.join(timeout=10.0)  # serve loop exits by itself
            assert not app._thread.is_alive()
        finally:
            app.shutdown()


# ----------------------------------------------------------------------
# repro serve CLI (subprocess end-to-end, parity with the CLI answer)
# ----------------------------------------------------------------------
REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def test_serve_cli_smoke_and_cli_parity():
    """Start ``repro serve`` for real, hit /explain + /stats, compare with CLI."""
    import os

    from repro.cli import main as cli_main

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--datasets",
            "covid-total",
            "--port",
            "0",
            "--max-requests",
            "3",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        assert match, f"no listen line, got: {line!r}"
        url = match.group(1)
        explain = _get_json(f"{url}/explain?dataset=covid-total")
        stats = _get_json(f"{url}/stats")
        _get_json(f"{url}/healthz")  # third request trips --max-requests
        process.wait(timeout=30.0)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
    assert process.returncode == 0
    assert stats["registry"]["resident_sessions"] == 1

    # Parity: every served explanation appears verbatim in the CLI's
    # report for the same dataset and default configuration.
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert cli_main(["explain", "--dataset", "covid-total"]) == 0
    cli_out = buffer.getvalue()
    served = [
        e["explanation"]
        for seg in explain["segments"]
        for e in seg["explanations"]
    ]
    assert served
    for explanation in served:
        assert explanation in cli_out
    assert f"K={explain['k']}" in cli_out


def test_register_during_inflight_build_never_caches_stale_session():
    """A spec replaced while its cold build is in flight must not be
    admitted: the racing request is served the stale session once, but
    the next request prepares the new spec."""
    release = threading.Event()
    old_dataset = make_dataset(n=24)
    new_dataset = make_dataset(n=26)

    def slow_loader():
        release.wait(timeout=10.0)
        return old_dataset

    registry = SessionRegistry(
        [DatasetSpec(name="regime", loader=slow_loader, config=ExplainConfig(k=2))]
    )
    sessions: list = []
    thread = threading.Thread(target=lambda: sessions.append(registry.session("regime")))
    thread.start()
    registry.register(spec_for(new_dataset))  # replace while the build waits
    release.set()
    thread.join(timeout=30.0)
    assert len(sessions) == 1
    assert sessions[0].relation.n_rows == old_dataset.relation.n_rows
    # The stale build was not cached: the next request builds the new spec.
    fresh = registry.session("regime")
    assert fresh is not sessions[0]
    assert fresh.relation.n_rows == new_dataset.relation.n_rows


# ----------------------------------------------------------------------
# Serve-tier accounting, drain shutdown, admission, multi-process front end
# ----------------------------------------------------------------------
def test_detect_state_counts_toward_memory_budget():
    """The cached detector's baselines are resident state of the dataset:
    the memory budget must see them, not just the explain cube."""
    from repro.serve.registry import detector_nbytes

    registry = SessionRegistry([spec_for(make_dataset())])
    registry.session("regime")
    before = registry.stats()["memory_bytes"]
    detector = registry.detect_session("regime")
    after = registry.stats()["memory_bytes"]
    assert detector_nbytes(detector) > 0
    assert after == before + detector_nbytes(detector)
    # Rebuilding the same detector does not double-count.
    assert registry.detect_session("regime") is detector
    assert registry.stats()["memory_bytes"] == after


def test_detect_state_can_trigger_eviction_and_evicts_its_detector():
    """Growing a resident entry by its detector bytes re-checks the budget,
    and an evicted dataset takes its cached detector with it."""
    from repro.serve.registry import detector_nbytes, session_nbytes

    probe = SessionRegistry([spec_for(make_dataset("probe"))])
    probe_session = probe.session("probe")
    probe_detector = probe.detect_session("probe")
    plain = session_nbytes(probe_session)
    full = plain + detector_nbytes(probe_detector)

    # Both plain sessions fit; the second detector build pushes past the
    # budget and the LRU entry (dataset "a") must go.
    registry = SessionRegistry(
        [spec_for(make_dataset("a")), spec_for(make_dataset("b"))],
        memory_budget_bytes=full + plain + detector_nbytes(probe_detector) // 2,
    )
    registry.detect_session("a")
    assert registry.stats()["resident_sessions"] == 1  # b not yet built
    registry.session("b")
    registry.detect_session("b")
    assert registry.stats()["resident_sessions"] == 1
    assert registry.detect_stats()["sessions"] == 1  # a's detector went too
    assert registry.stats()["evictions"] >= 1


def test_shutdown_waits_for_inflight_responses():
    """shutdown() must not tear an in-flight response: the client gets a
    complete, valid payload even when shutdown lands mid-request."""
    entered = threading.Event()
    release = threading.Event()
    dataset = make_dataset()

    def slow_loader():
        entered.set()
        release.wait(timeout=30.0)
        return dataset

    registry = SessionRegistry(
        [DatasetSpec(name="regime", loader=slow_loader, config=ExplainConfig(k=2))]
    )
    app = ServeApp(
        registry, QueryScheduler(registry, max_workers=2), port=0
    ).start()
    result: dict = {}

    def client():
        try:
            result["payload"] = _get_json(f"{app.url}/explain?dataset=regime")
        except Exception as error:  # pragma: no cover - failure detail
            result["error"] = error

    thread = threading.Thread(target=client)
    thread.start()
    assert entered.wait(timeout=30.0)

    releaser = threading.Timer(0.5, release.set)
    releaser.start()
    try:
        app.shutdown()  # must block until the admitted response is written
    finally:
        releaser.cancel()
        release.set()
    thread.join(timeout=10.0)
    assert "error" not in result, result.get("error")
    assert result["payload"]["segments"]


def test_blank_parameter_is_400(app):
    """``?k=`` must be rejected loudly, not silently dropped."""
    for query in (
        "/explain?dataset=regime&k=",
        "/explain?dataset=regime&start=",
        "/explain?dataset=regime&smoothing=",
        "/detect?dataset=regime&direction=",
    ):
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"{app.url}{query}")
        assert error.value.code == 400, query
        assert "empty value" in json.loads(error.value.read().decode("utf-8"))["error"]
    # A blank dataset is indistinguishable from a missing one; still 400.
    with pytest.raises(urllib.error.HTTPError) as error:
        urllib.request.urlopen(f"{app.url}/explain?dataset=")
    assert error.value.code == 400


def test_admission_control_sheds_excess_with_503():
    entered = threading.Event()
    release = threading.Event()
    dataset = make_dataset()

    def slow_loader():
        entered.set()
        release.wait(timeout=30.0)
        return dataset

    registry = SessionRegistry(
        [DatasetSpec(name="regime", loader=slow_loader, config=ExplainConfig(k=2))]
    )
    app = ServeApp(
        registry,
        QueryScheduler(registry, max_workers=2),
        port=0,
        max_inflight=1,
    ).start()
    try:
        result: dict = {}

        def client():
            result["payload"] = _get_json(f"{app.url}/explain?dataset=regime")

        thread = threading.Thread(target=client)
        thread.start()
        assert entered.wait(timeout=30.0)
        # The slot is taken: even /healthz is refused, with a retry hint.
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"{app.url}/healthz")
        assert error.value.code == 503
        assert error.value.headers["Retry-After"] == "1"
        release.set()
        thread.join(timeout=30.0)
        assert result["payload"]["segments"]

        # A client finishes reading slightly before the handler thread
        # runs its release(): with a single slot, wait for the server to
        # actually free it before each follow-up request.
        def wait_idle():
            for _ in range(500):
                if app.inflight == 0:
                    return
                time.sleep(0.01)

        wait_idle()
        assert _get_json(f"{app.url}/healthz")["ok"] is True
        wait_idle()
        stats = _get_json(f"{app.url}/stats")
        assert stats["rejected"] >= 1
        assert stats["max_inflight"] == 1
    finally:
        release.set()
        app.shutdown()


def _no_timings(payload: dict) -> dict:
    payload = dict(payload)
    payload.pop("timings", None)
    return payload


@pytest.mark.skipif(
    not __import__("repro.serve.http", fromlist=["reuseport_available"]).reuseport_available(),
    reason="SO_REUSEPORT unavailable on this platform",
)
def test_worker_pool_serves_identically_and_survives_worker_loss(tmp_path):
    """N workers over one shared artifact answer exactly like the
    single-process server, and survivors keep answering after a kill."""
    from repro.cube.artifact import ARTIFACT_SUFFIX
    from repro.serve.multiproc import WorkerPool

    cache_dir = str(tmp_path / "cache")
    pool = WorkerPool(
        {"datasets": ["covid-total"], "cache_dir": cache_dir, "port": 0, "access_log": False},
        workers=2,
    ).start()
    try:
        url = f"{pool.url}/explain?dataset=covid-total"
        served = _no_timings(_get_json(url))

        single = make_app(
            datasets=["covid-total"], cache_dir=cache_dir, artifacts=True, port=0,
            access_log=False,
        ).start()
        try:
            reference = _no_timings(_get_json(f"{single.url}/explain?dataset=covid-total"))
        finally:
            single.shutdown()
        assert served == reference

        # The parent pre-built exactly one shared artifact; the workers
        # adopted it instead of rebuilding.
        assert list(Path(cache_dir).glob(f"*{ARTIFACT_SUFFIX}"))
        # /stats lands on whichever worker the kernel picks per
        # connection; sample until we see the one that served /explain.
        saw_artifact_hit = False
        for _ in range(20):
            stats = _get_json(f"{pool.url}/stats")
            assert stats["registry"]["artifacts"] is True
            if stats["registry"]["artifact_hits"] >= 1:
                saw_artifact_hit = True
                break
        assert saw_artifact_hit

        pool.kill_worker(0)
        assert pool.n_alive == 1
        for _ in range(6):
            assert _no_timings(_get_json(url)) == reference
    finally:
        pool.shutdown()
