"""Figure 16: end-to-end efficiency of TSExplain vs the baselines
(baselines get the CA explanation module attached after segmenting).

Paper result: FLUSS is the slowest everywhere; Vanilla TSExplain is
comparable to Bottom-Up on the Covid datasets and slower on Liquor; fully
optimized TSExplain is the fastest on every dataset.
"""

import pytest

from repro.baselines import all_baselines
from repro.core.config import ExplainConfig
from repro.evaluation.latency import time_baseline, time_tsexplain
from support import emit, real_dataset, with_smoothing

DATASETS = ("covid-total", "covid-daily", "liquor")


@pytest.mark.parametrize("name", DATASETS)
def bench_fig16_end_to_end(benchmark, name):
    ds = real_dataset(name)

    def run():
        optimized = time_tsexplain(
            ds, with_smoothing(ds, ExplainConfig.optimized()), "TSExplain(O1+O2)"
        )
        k = optimized.k
        vanilla = time_tsexplain(
            ds, with_smoothing(ds, ExplainConfig.vanilla(k=k)), "VanillaTSExplain"
        )
        baselines = [
            time_baseline(
                ds, segmenter, k, with_smoothing(ds, ExplainConfig())
            )
            for segmenter in all_baselines()
        ]
        return optimized, vanilla, baselines

    optimized, vanilla, baselines = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"dataset: {name} (K={optimized.k})"]
    for report in baselines:
        lines.append(report.row())
    lines.append(vanilla.row())
    lines.append(optimized.row())
    emit(f"fig16_end_to_end_{name}", "\n".join(lines))

    times = {report.label: report.total for report in baselines}
    benchmark.extra_info["optimized_total"] = round(optimized.total, 3)
    # Optimized TSExplain must be faster than vanilla.
    assert optimized.total < vanilla.total
    # FLUSS (matrix profile) should not be the fastest method.
    assert times["FLUSS"] >= min(times.values())
