"""Table 7: result quality of the optimizations — total within-segment
variance of Vanilla vs O1+O2 on the real-world datasets.

Paper result: identical variance on S&P 500 and Liquor; < 1% difference on
the Covid datasets with cut points shifted by at most four days.
"""

from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from support import emit, real_dataset, with_smoothing

DATASETS = ("covid-total", "covid-daily", "sp500", "liquor")


def _run(ds, config):
    pipeline = ExplainPipeline(
        ds.relation,
        ds.measure,
        ds.explain_by,
        aggregate=ds.aggregate,
        config=with_smoothing(ds, config),
    )
    return pipeline.run()


def bench_tab7_optimization_quality(benchmark):
    def run():
        rows = []
        for name in DATASETS:
            ds = real_dataset(name)
            vanilla = _run(ds, ExplainConfig.vanilla())
            # Fix K to vanilla's choice so the variances are comparable.
            optimized = _run(ds, ExplainConfig.optimized(k=vanilla.k))
            rows.append((name, vanilla, optimized))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'dataset':<14s} {'Var(Vanilla)':>14s} {'Var(O1+O2)':>12s} "
        f"{'diff %':>8s} {'max cut shift':>14s}"
    ]
    worst_relative = 0.0
    for name, vanilla, optimized in rows:
        base = vanilla.total_variance
        relative = (
            abs(optimized.total_variance - base) / base * 100.0 if base > 0 else 0.0
        )
        worst_relative = max(worst_relative, relative)
        shifts = [
            min(abs(c - v) for v in vanilla.boundaries) for c in optimized.cuts
        ]
        lines.append(
            f"{name:<14s} {base:>14.4f} {optimized.total_variance:>12.4f} "
            f"{relative:>8.2f} {max(shifts) if shifts else 0:>14d}"
        )
    emit("tab7_optimization_quality", "\n".join(lines))
    benchmark.extra_info["worst_relative_pct"] = round(worst_relative, 3)
    # Paper: the optimizations' effect on quality is negligible.
    assert worst_relative < 15.0
