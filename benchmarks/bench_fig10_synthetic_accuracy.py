"""Figure 10: distance percent (%) of TSExplain vs the three baselines
across SNR levels, with the oracle K.

Paper result: TSExplain is best at every SNR; Bottom-Up is the closest
baseline; for SNR > 35, TSExplain's distance percent approaches 0.
"""

from collections import defaultdict

from repro.baselines import BottomUpSegmenter, FlussSegmenter, NNSegmenter
from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.datasets.synthetic import SNR_LEVELS, synthetic_suite
from repro.evaluation.editdist import distance_percent
from support import emit, is_paper_scale

METHODS = ("TSExplain", "Bottom-Up", "FLUSS", "NNSegment")


def bench_fig10_synthetic_accuracy(benchmark):
    if is_paper_scale():
        n_datasets, snr_levels = 20, SNR_LEVELS
    else:
        n_datasets, snr_levels = 4, (20, 30, 40, 50)

    segmenters = {
        "Bottom-Up": BottomUpSegmenter(),
        "FLUSS": FlussSegmenter(),
        "NNSegment": NNSegmenter(),
    }

    def run():
        suite = synthetic_suite(n_datasets=n_datasets, snr_levels=snr_levels)
        sums: dict[tuple[float, str], float] = defaultdict(float)
        counts: dict[float, int] = defaultdict(int)
        for data in suite:
            ds = data.dataset
            n = len(ds.series())
            engine = TSExplain(
                ds.relation,
                measure=ds.measure,
                explain_by=ds.explain_by,
                config=ExplainConfig.vanilla(k=data.k),
            )
            result = engine.explain()
            sums[(data.snr_db, "TSExplain")] += distance_percent(
                result.boundaries, data.boundaries, n
            )
            values = ds.series().values
            for name, segmenter in segmenters.items():
                boundaries = segmenter.segment(values, data.k)
                sums[(data.snr_db, name)] += distance_percent(
                    boundaries, data.boundaries, n
                )
            counts[data.snr_db] += 1
        return {
            snr: {name: sums[(snr, name)] / counts[snr] for name in METHODS}
            for snr in sorted(counts)
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["SNR   " + "".join(f"{name:>11s}" for name in METHODS)]
    for snr, row in table.items():
        lines.append(f"{snr:<5g} " + "".join(f"{row[name]:11.2f}" for name in METHODS))
    wins = sum(
        1
        for row in table.values()
        if row["TSExplain"] <= min(row.values()) + 1e-9
    )
    clean = [row["TSExplain"] for snr, row in table.items() if snr > 35]
    lines.append(f"TSExplain best at {wins}/{len(table)} SNR levels")
    if clean:
        lines.append(f"TSExplain distance percent at SNR>35: {clean}")
    emit("fig10_synthetic_accuracy", "\n".join(lines))
    benchmark.extra_info["tsexplain_wins"] = wins
    assert wins >= len(table) - 1
    assert all(value < 3.0 for value in clean)
