"""Figure 11: segmentation of Covid total-confirmed-cases.

Paper result: the elbow picks K=6; the evolving top-3 goes
WA/NY/CA -> NY/NJ/MA -> (IL,CA,NY) -> CA/TX/FL(+IL) -> ... -> CA/TX/FL,
while the baselines repeat neighbouring explanations or cut the early
phase into uninterpretable slivers.
"""

from repro.baselines import all_baselines
from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.viz.report import explanation_table, k_variance_table
from support import emit, real_dataset


def bench_fig11_covid_total(benchmark):
    ds = real_dataset("covid-total")
    engine = TSExplain(
        ds.relation,
        measure=ds.measure,
        explain_by=ds.explain_by,
        config=ExplainConfig.optimized(),
    )
    result = benchmark.pedantic(engine.explain, rounds=1, iterations=1)

    lines = [
        f"TSExplain: K={result.k} (auto={result.k_was_auto}), "
        f"cuts at {[str(l) for l in result.cut_labels]}",
        explanation_table(result),
        "",
        k_variance_table(result),
        "",
        "Baselines (same K, explanation-agnostic):",
    ]
    values = ds.series().values
    for segmenter in all_baselines():
        boundaries = segmenter.segment(values, result.k)
        labels = [str(ds.series().label_at(b)) for b in boundaries]
        lines.append(f"  {segmenter.name:<10s} cuts at {labels}")
    emit("fig11_covid_total", "\n".join(lines))
    benchmark.extra_info["k"] = result.k

    # Reproduction checks: K in the paper's ballpark and the wave story.
    assert 5 <= result.k <= 7
    tops = [repr(s.explanations[0].explanation) for s in result.segments]
    assert any("New York" in t for t in tops[:3])
    assert any("California" in t for t in tops[-3:])
