"""Figure 5: one synthetic series at SNR 35 with its per-category
components and ground-truth cutting points."""

from repro.datasets.synthetic import generate_synthetic
from repro.relation.timeseries import TimeSeries
from repro.viz.ascii_chart import ascii_chart, sparkline
from support import emit


def bench_fig05_synthetic_example(benchmark):
    data = benchmark.pedantic(
        lambda: generate_synthetic(20230103, 35), rounds=1, iterations=1
    )
    series = data.dataset.series()
    lines = [
        f"Ground-truth cuts: {list(data.cuts)} (K={data.k}, SNR=35dB)",
        ascii_chart(series, cuts=data.cuts, height=10),
        "",
        "Per-category components (dashed lines of Figure 5):",
    ]
    for category, values in sorted(data.category_series.items()):
        lines.append(f"  {category}: {sparkline(values, 60)}")
    lines.append(f"  agg: {sparkline(series.values, 60)}")
    emit("fig05_synthetic_example", "\n".join(lines))
    assert isinstance(series, TimeSeries)
