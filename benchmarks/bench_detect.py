"""Detect-tier throughput: full-axis scans vs O(delta) streaming appends.

The detect subsystem's claims, recorded in ``benchmarks/BENCH_detect.json``:

1. **scan throughput** — scoring every ``(candidate, day)`` cell of a
   prepared cube against its tiered day-of-week baselines is a vectorized
   pass; cells/second over the full axis is reported;
2. **incremental appends** — absorbing a one-day delta through
   :meth:`DetectSession.append` (cube append + baseline advance + scoring
   only the touched columns) is at least **5x** faster than what a
   stateless monitor pays every poll: re-preparing the session over the
   grown relation, rebuilding the baselines and rescanning the whole
   axis.  Equivalence comes first: the advanced baseline arrays are
   asserted byte-identical to a from-scratch rebuild before the speedup
   is measured, so the win never comes from weaker state;
3. the harness seeds a known spike in the streamed tail and asserts the
   incremental path surfaces it at ``critical`` severity.
"""

import time
from datetime import date, timedelta
from pathlib import Path

import numpy as np

from repro.core.session import ExplainSession
from repro.detect.baselines import TieredBaselines
from repro.detect.scoring import DetectConfig, score_columns
from repro.detect.session import DetectSession
from repro.relation.schema import Schema
from repro.relation.table import Relation
from support import append_run, emit, git_rev, is_paper_scale, scale

BENCH_JSON = Path(__file__).parent / "BENCH_detect.json"

START = date(2024, 1, 1)  # a Monday


def daily_table(n_days: int, n_regions: int, n_products: int) -> Relation:
    """A dated table with a weekly seasonal pattern plus noise.

    One row per (day, region, product); a known spike is injected for
    region ``r0`` on the third-to-last day so the streamed tail carries
    a guaranteed critical anomaly.
    """
    rng = np.random.default_rng(20230787)
    per_day = n_regions * n_products
    days = np.repeat(
        np.asarray(
            [(START + timedelta(days=t)).isoformat() for t in range(n_days)],
            dtype=object,
        ),
        per_day,
    )
    regions = np.tile(
        np.repeat(
            np.asarray([f"r{i}" for i in range(n_regions)], dtype=object), n_products
        ),
        n_days,
    )
    products = np.tile(
        np.asarray([f"p{i:02d}" for i in range(n_products)], dtype=object),
        n_days * n_regions,
    )
    weekday = np.repeat(np.arange(n_days) % 7, per_day)
    values = 100.0 + 10.0 * weekday + rng.normal(0.0, 2.0, size=n_days * per_day)
    spike_day = (START + timedelta(days=n_days - 3)).isoformat()
    values[(days == spike_day) & (regions == "r0")] *= 8.0
    schema = Schema.build(
        dimensions=["region", "product"], measures=["revenue"], time="day"
    )
    return Relation(
        {"day": days, "region": regions, "product": products, "revenue": values},
        schema,
    )


def _day_slices(relation, first_day, last_day):
    positions, _ = relation.time_positions(None)
    return [relation.take(positions == day) for day in range(first_day, last_day)]


def bench_detect(benchmark):
    n_days = 364 if is_paper_scale() else 140
    n_regions = 12 if is_paper_scale() else 8
    n_products = 40 if is_paper_scale() else 25
    n_tail = 7  # days streamed one by one through append

    relation = daily_table(n_days, n_regions, n_products)
    positions, _ = relation.time_positions(None)
    base = relation.take(positions < n_days - n_tail)
    deltas = _day_slices(relation, n_days - n_tail, n_days)

    config = DetectConfig(z_critical=5.0)
    detector = DetectSession(
        ExplainSession(base, measure="revenue", explain_by=["region", "product"]),
        config=config,
    )
    assert detector.baselines.calendar_mode == "date"

    # --- 1. full-axis scan throughput -----------------------------------
    scan_seconds = []
    report = None
    for _ in range(3):
        started = time.perf_counter()
        report = detector.scan()
        scan_seconds.append(time.perf_counter() - started)
    scan_best = min(scan_seconds)
    cells_per_second = report.cells_scored / scan_best

    # --- 2. incremental appends vs rebuild-and-rescan -------------------
    append_seconds = []
    rescan_seconds = []
    tail_cells = []
    for delta in deltas:
        started = time.perf_counter()
        update = detector.append(delta)
        append_seconds.append(time.perf_counter() - started)
        tail_cells.extend(update.report.cells)

        # The naive alternative a stateless monitor pays every poll:
        # re-prepare the session over the grown relation, rebuild the
        # baselines and rescan the whole axis.
        grown = detector.session.relation
        started = time.perf_counter()
        stateless = DetectSession(
            ExplainSession(
                grown, measure="revenue", explain_by=["region", "product"]
            ),
            config=config,
        )
        stateless.scan()
        rescan_seconds.append(time.perf_counter() - started)

        # Equivalence before speed: the advanced state is byte-identical
        # to a from-scratch rebuild over the live session's grown cube.
        fresh = TieredBaselines(detector.session.cube, config)
        live = detector.baselines
        assert live.tier.tobytes() == fresh.tier.tobytes()
        assert live.samples.tobytes() == fresh.samples.tobytes()
        assert live.mean.tobytes() == fresh.mean.tobytes()
        assert live.std.tobytes() == fresh.std.tobytes()

    append_best = min(append_seconds)
    rescan_best = min(rescan_seconds)
    speedup = rescan_best / append_best

    # --- 3. the seeded spike surfaces through the incremental path ------
    spike_label = (START + timedelta(days=n_days - 3)).isoformat()
    spiked = [
        cell
        for cell in tail_cells
        if cell.label == spike_label
        and cell.severity == "critical"
        and ("region", "r0") in cell.items
    ]
    assert spiked, f"seeded spike at {spike_label} not surfaced as critical"

    # The official pytest-benchmark number: one warm full-axis scan.
    benchmark.pedantic(detector.scan, rounds=5, iterations=1)
    benchmark.extra_info["cells_per_second"] = round(cells_per_second)
    benchmark.extra_info["append_speedup"] = round(speedup, 1)

    record = {
        "bench": "detect",
        "scale": scale(),
        "git_rev": git_rev(),
        "rows": relation.n_rows,
        "days": n_days,
        "candidates": detector.session.cube.n_explanations,
        "scan": {
            "cells_scored": report.cells_scored,
            "best_seconds": round(scan_best, 5),
            "cells_per_second": round(cells_per_second),
        },
        "append": {
            "days_streamed": n_tail,
            "incremental_best_ms": round(append_best * 1000, 3),
            "stateless_rescan_best_ms": round(rescan_best * 1000, 3),
            "speedup": round(speedup, 1),
        },
        "seeded_spike": {
            "label": spike_label,
            "surfaced": True,
            "worst_z": round(max(abs(c.z) for c in spiked), 2),
        },
    }
    append_run(BENCH_JSON, record)

    lines = [
        f"rows={relation.n_rows} days={n_days} "
        f"candidates={detector.session.cube.n_explanations} "
        f"streamed tail={n_tail} days",
        f"full scan:                 {scan_best * 1000:8.1f} ms "
        f"({report.cells_scored} cells, {cells_per_second:,.0f} cells/s)",
        f"incremental append (1 day):{append_best * 1000:8.1f} ms",
        f"stateless re-prepare+scan: {rescan_best * 1000:8.1f} ms",
        f"speedup (rescan -> append): {speedup:.1f}x (baselines byte-identical)",
        f"seeded spike @ {spike_label}: critical, |z| up to "
        f"{max(abs(c.z) for c in spiked):.1f}",
    ]
    emit("detect", "\n".join(lines))

    assert speedup >= 5.0, (
        f"incremental append must be >= 5x faster than rebuild+rescan, "
        f"got {speedup:.1f}x"
    )
