"""Session reuse: cold builds vs warm O(window) queries on one session.

The session API's claim is the paper's two-tier split made public: prepare
once (build the cube), then serve every interactive window query as a
slice of the prepared arrays.  Three claims are measured:

1. a **warm** window query on a prepared :class:`ExplainSession` is at
   least 10x faster than a **cold** ``TSExplain(...).explain(start, stop)``
   that has to build the cube first;
2. warm and cold answers carry **byte-identical** top-k explanations
   (``float.hex`` comparison, no tolerance) — and both match the legacy
   filter-the-relation-and-rebuild path the session API replaced;
3. repeating the query hits the per-session scorer LRU (no re-derivation).
"""

import time

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.pipeline import ExplainPipeline
from repro.core.session import ExplainSession, window_relation
from repro.datasets.synthetic import generate_synthetic
from support import emit, is_paper_scale


def _top_k_fingerprint(result):
    """Byte-exact rendering of every segment's top explanations."""
    return tuple(
        (
            segment.start_label,
            segment.stop_label,
            tuple(
                (repr(s.explanation), s.gamma.hex(), s.tau)
                for s in segment.explanations
            ),
        )
        for segment in result.segments
    )


def bench_session_reuse(benchmark):
    n_points = 960 if is_paper_scale() else 480
    n_categories = 512 if is_paper_scale() else 256
    synthetic = generate_synthetic(
        seed=11, snr_db=40.0, n_points=n_points, n_categories=n_categories
    )
    dataset = synthetic.dataset
    relation = dataset.relation
    explain_by = list(dataset.explain_by)
    measure = dataset.measure
    config = ExplainConfig(k=3)

    labels = dataset.series().labels
    start, stop = labels[n_points // 3], labels[n_points // 3 + 11]

    # --- cold: a fresh engine per query pays the build every time -------
    cold_results = []
    cold_seconds = []
    for _ in range(3):
        started = time.perf_counter()
        engine = TSExplain(relation, measure, explain_by, config=config)
        cold_results.append(engine.explain(start, stop))
        cold_seconds.append(time.perf_counter() - started)
    cold_best = min(cold_seconds)

    # --- warm: one session, the window is an array slice ----------------
    session = ExplainSession(relation, measure, explain_by, config=config)
    session.prepare()
    session.explain(start, stop)  # populate the scorer LRU

    def warm_query():
        return session.explain(start, stop)

    warm_result = benchmark.pedantic(warm_query, rounds=5, iterations=1)
    warm_seconds = []
    for _ in range(3):
        started = time.perf_counter()
        warm_query()
        warm_seconds.append(time.perf_counter() - started)
    warm_best = min(warm_seconds)
    speedup = cold_best / warm_best

    # --- the legacy path: filter the relation, rebuild the cube ---------
    legacy = ExplainPipeline(
        window_relation(relation, None, start, stop),
        measure,
        explain_by,
        config=config,
    ).run()

    # --- identical answers, byte for byte -------------------------------
    warm_print = _top_k_fingerprint(warm_result)
    assert warm_print == _top_k_fingerprint(cold_results[0])
    assert warm_print == _top_k_fingerprint(legacy)

    lines = [
        f"rows={relation.n_rows} epsilon={session.cube.n_explanations} "
        f"n={n_points} window=[{start}..{stop}]",
        f"cold  (fresh TSExplain, build + query): {cold_best * 1000:8.1f} ms",
        f"warm  (session slice, LRU scorer):      {warm_best * 1000:8.1f} ms",
        f"speedup (cold -> warm): {speedup:.1f}x",
        f"warm precomputation reported: "
        f"{warm_result.timings['precomputation'] * 1000:.3f} ms",
        "warm vs cold vs legacy-rebuild top-k: byte-identical",
    ]
    emit("session_reuse", "\n".join(lines))
    benchmark.extra_info["session_speedup"] = round(speedup, 1)

    assert speedup >= 10.0
