"""The rollup-lattice prepare tier vs. per-shape builds (PR-6 claims).

Two claims, recorded in ``benchmarks/BENCH_lattice.json``:

1. **Cold**: building a lattice of N rollup shapes in a single pass —
   one scan feeding every root ledger, coarser shapes derived by
   re-aggregation — is >= 2x faster than building the N cubes
   independently from the relation.  The cubes are asserted byte-equal
   first, so the speedup never comes from computing something weaker.
2. **Warm**: answering a prepared shape through the
   :class:`~repro.lattice.router.LatticeRouter` (resident rollup) stays
   within 2x of the classic exact rollup-cache hit (p50 and p95 over
   repeated session prepares; in practice routing is faster — it skips
   the fingerprint + disk round trip).
"""

import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.cache import RollupCache
from repro.cube.datacube import ExplanationCube
from repro.lattice import LatticeRouter, RollupSpec, build_lattice, rollup_key
from repro.relation.schema import Schema
from repro.relation.table import Relation
from support import append_run, emit, git_rev, is_paper_scale, scale

BENCH_JSON = Path(__file__).parent / "BENCH_lattice.json"

WARM_ROUNDS = 30


def synthetic_table(n_times: int) -> Relation:
    """A time-ordered table: 8 regions x 25 products, 2 rows per cell."""
    n_regions, n_products, dup = 8, 25, 2
    per_time = n_regions * n_products * dup
    rng = np.random.default_rng(20230786)
    times = np.repeat(
        np.asarray([f"d{t:04d}" for t in range(n_times)], dtype=object), per_time
    )
    regions = np.tile(
        np.repeat(
            np.asarray([f"r{i}" for i in range(n_regions)], dtype=object),
            n_products * dup,
        ),
        n_times,
    )
    products = np.tile(
        np.repeat(
            np.asarray([f"p{i:02d}" for i in range(n_products)], dtype=object), dup
        ),
        n_times * n_regions,
    )
    values = rng.normal(100.0, 15.0, size=n_times * per_time)
    schema = Schema.build(
        dimensions=["region", "product"], measures=["revenue"], time="day"
    )
    return Relation(
        {"day": times, "region": regions, "product": products, "revenue": values},
        schema,
    )


def lattice_specs(max_order: int) -> list[RollupSpec]:
    """Six shapes; the planner collapses them to ONE scan root (var)."""
    full = ("product", "region")
    specs = [
        RollupSpec(dims=full, measure="revenue", aggregate=agg, max_order=max_order)
        for agg in ("var", "avg", "sum", "count")
    ]
    specs += [
        RollupSpec(dims=(dim,), measure="revenue", aggregate="sum", max_order=max_order)
        for dim in full
    ]
    return specs


def _percentiles(samples: list[float]) -> tuple[float, float]:
    ordered = sorted(samples)
    p50 = statistics.median(ordered)
    p95 = ordered[min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))]
    return p50, p95


def bench_lattice_router(benchmark, tmp_path):
    n_times = 160 if is_paper_scale() else 48
    relation = synthetic_table(n_times)
    config = ExplainConfig.optimized()
    specs = lattice_specs(config.max_order)

    # --- cold: N independent builds, one relation pass each -----------
    started = time.perf_counter()
    independent = {
        spec: ExplanationCube(
            relation,
            spec.dims,
            spec.measure,
            aggregate=spec.aggregate,
            max_order=spec.max_order,
        )
        for spec in specs
    }
    independent_seconds = time.perf_counter() - started

    # --- cold: one scan + ledger re-aggregation ------------------------
    started = time.perf_counter()
    cubes, report = build_lattice(relation, specs)
    lattice_seconds = time.perf_counter() - started
    assert len(report.built) == 1, "the planner must collapse to one scan root"

    # Equivalence before speed: byte-identical to the independent builds.
    for spec in specs:
        assert cubes[spec].included_values.tobytes() == independent[spec].included_values.tobytes()
        assert cubes[spec].explanations == independent[spec].explanations
    speedup = independent_seconds / lattice_seconds

    # --- warm: routed resident rollup vs exact rollup-cache hit --------
    cache = RollupCache(tmp_path / "cache")
    full_sum = next(s for s in specs if len(s.dims) == 2 and s.aggregate == "sum")
    key = rollup_key(relation.fingerprint(), full_sum, "day")
    cache.store(key, cubes[full_sum])
    assert cache.load(key) is not None

    router = LatticeRouter.for_relation(relation)
    router.seed(cubes)
    hit_config = config.updated(cache_dir=str(tmp_path / "cache"))

    def routed_prepare():
        session = ExplainSession.from_lattice(
            router,
            relation=relation,
            measure="revenue",
            explain_by=("product", "region"),
            config=config,
        )
        assert session.route_info.decision == "exact"
        return session

    def exact_hit_prepare():
        session = ExplainSession(
            relation,
            measure="revenue",
            explain_by=("product", "region"),
            config=hit_config,
        )
        session.prepare()
        return session

    routed_prepare(), exact_hit_prepare()  # warm both paths once
    routed_ms, exact_ms = [], []
    for _ in range(WARM_ROUNDS):
        started = time.perf_counter()
        routed_prepare()
        routed_ms.append((time.perf_counter() - started) * 1e3)
        started = time.perf_counter()
        exact_hit_prepare()
        exact_ms.append((time.perf_counter() - started) * 1e3)
    routed_p50, routed_p95 = _percentiles(routed_ms)
    exact_p50, exact_p95 = _percentiles(exact_ms)

    benchmark.pedantic(routed_prepare, rounds=5, iterations=1)
    benchmark.extra_info["cold_speedup"] = round(speedup, 2)
    benchmark.extra_info["routed_p50_ms"] = round(routed_p50, 3)

    record = {
        "bench": "lattice_router",
        "scale": scale(),
        "git_rev": git_rev(),
        "rows": relation.n_rows,
        "rollups": len(specs),
        "scan_roots": len(report.built),
        "cold": {
            "independent_builds_seconds": round(independent_seconds, 4),
            "single_scan_lattice_seconds": round(lattice_seconds, 4),
            "speedup": round(speedup, 2),
        },
        "warm": {
            "routed_p50_ms": round(routed_p50, 3),
            "routed_p95_ms": round(routed_p95, 3),
            "exact_cache_hit_p50_ms": round(exact_p50, 3),
            "exact_cache_hit_p95_ms": round(exact_p95, 3),
            "p50_ratio_vs_exact_hit": round(routed_p50 / exact_p50, 3),
        },
    }
    append_run(BENCH_JSON, record)

    emit(
        "bench_lattice_router",
        "\n".join(
            [
                f"rows={relation.n_rows}  rollups={len(specs)} "
                f"(scan roots: {len(report.built)})",
                f"cold: {len(specs)} independent builds "
                f"{independent_seconds:.3f}s vs single-scan lattice "
                f"{lattice_seconds:.3f}s -> {speedup:.2f}x",
                f"warm: routed p50={routed_p50:.3f}ms p95={routed_p95:.3f}ms; "
                f"exact cache hit p50={exact_p50:.3f}ms p95={exact_p95:.3f}ms",
            ]
        ),
    )

    assert speedup >= 2.0, (
        f"single-scan lattice build must be >= 2x faster than "
        f"{len(specs)} independent builds, got {speedup:.2f}x"
    )
    assert routed_p50 <= 2.0 * exact_p50, (
        f"warm routed prepare p50 {routed_p50:.3f}ms exceeds 2x the exact "
        f"cache hit p50 {exact_p50:.3f}ms"
    )
