"""Figure 14 + Table 5: segmentation of Iowa liquor bottles sold.

Paper result: K=7 — large packs (P=12/24/48 +) ramp up from 1/20, BV=1000
collapses during the March bar shutdown while BV=1750&P=6 and BV=750&P=12
rise, BV=1000(&P=12) rebounds after the late-April reopening, and the
interesting attributes are only BV and P (never VN or CN).
"""

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.viz.report import explanation_table, k_variance_table
from support import emit, real_dataset, with_smoothing


def bench_fig14_tab5_liquor(benchmark):
    ds = real_dataset("liquor")
    config = with_smoothing(ds, ExplainConfig.optimized())
    engine = TSExplain(
        ds.relation, measure=ds.measure, explain_by=ds.explain_by, config=config
    )
    result = benchmark.pedantic(engine.explain, rounds=1, iterations=1)

    lines = [
        f"TSExplain: K={result.k} (auto={result.k_was_auto}), epsilon="
        f"{result.epsilon} filtered={result.filtered_epsilon}",
        explanation_table(result),
        "",
        k_variance_table(result),
    ]
    emit("fig14_tab5_liquor", "\n".join(lines))
    benchmark.extra_info["k"] = result.k
    benchmark.extra_info["epsilon"] = result.epsilon

    assert 5 <= result.k <= 9
    attributes = {
        name
        for segment in result.segments
        for scored in segment.explanations
        for name in scored.explanation.attributes()
    }
    # "the results are only about BV and P": vendor/category never appear.
    assert attributes <= {"bottle_volume_ml", "pack"}
    texts = [
        repr(s.explanation) for seg in result.segments for s in seg.explanations
    ]
    assert any("pack=12" in t for t in texts)
    assert any("bottle_volume_ml=1000" in t for t in texts)
