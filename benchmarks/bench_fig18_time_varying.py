"""Figure 18: weekly Covid deaths with the time-varying ``vaccinated``
attribute.

Paper result: before ~week 31 the top contributor is ``vaccinated=NO``;
afterwards it shifts to ``age-group=50+`` (the Delta wave hits the elderly
regardless of vaccination status).
"""

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.viz.report import explanation_table, segmentation_chart
from support import emit, real_dataset


def bench_fig18_time_varying(benchmark):
    ds = real_dataset("covid-deaths")
    engine = TSExplain(
        ds.relation,
        measure=ds.measure,
        explain_by=ds.explain_by,
        config=ExplainConfig(),
    )
    result = benchmark.pedantic(engine.explain, rounds=1, iterations=1)

    lines = [
        f"TSExplain: K={result.k} (auto={result.k_was_auto}), cuts at "
        f"{[str(l) for l in result.cut_labels]}",
        segmentation_chart(result),
        "",
        explanation_table(result),
    ]
    emit("fig18_time_varying", "\n".join(lines))
    benchmark.extra_info["k"] = result.k

    first_top = repr(result.segments[0].explanations[0].explanation)
    assert first_top == "vaccinated=NO"
    later_tops = [
        repr(segment.explanations[0].explanation) for segment in result.segments[1:]
    ]
    assert any("age_group=50+" in top for top in later_tops)
