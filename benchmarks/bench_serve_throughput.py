"""Serving-tier load test: parallel sharded builds + concurrent clients.

The serving tier's claims, measured end to end over real HTTP:

1. the **sharded parallel cold build** produces a cube byte-identical to
   the one-shot build (asserted on the raw arrays) while spreading the
   work across worker processes — the wall-clock ratio is reported, with
   the machine's CPU count for context (a single-core container or a
   tiny input cannot show a speedup; multi-core CI and paper scale do);
2. the first ``/explain`` for a dataset pays the cold build once
   (single-flight: a whole herd of concurrent clients triggers exactly
   one prepare), after which **warm** requests are served from the
   session LRU orders of magnitude faster — cold latency vs warm
   p50/p95 and aggregate requests/second are reported;
3. the served answers carry **byte-identical** top-k explanations
   (``float.hex`` comparison over HTTP JSON) to a direct in-process
   :class:`ExplainSession` over the same data and configuration;
4. the **multi-process front end** (``repro serve --workers N``) answers
   identically to the single-process server from one shared mmap-ed cube
   artifact, with per-worker RSS far below a per-worker cube copy —
   measured end to end through the real CLI, with p50/p95/p99 latency
   per worker count.

``BENCH_serve.json`` is a *trajectory*: every run appends a record
(``support.append_run``) instead of overwriting, so regressions show up
as a time series across commits (each record carries the git revision).
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.datacube import ExplanationCube
from repro.datasets.synthetic import generate_synthetic
from repro.serve.http import ServeApp, reuseport_available
from repro.serve.registry import DatasetSpec, SessionRegistry
from repro.serve.scheduler import QueryScheduler
from repro.serve.sharding import ShardedBuilder
from support import append_run, emit, git_rev, is_paper_scale, scale

BENCH_JSON = Path(__file__).parent / "BENCH_serve.json"
REPO_ROOT = Path(__file__).resolve().parents[1]


def _get_json(url: str):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))



def _rss_mb(pid: int) -> float | None:
    """Resident set size of ``pid`` in MiB (Linux /proc; None elsewhere)."""
    try:
        text = Path(f"/proc/{pid}/status").read_text(encoding="ascii")
    except OSError:
        return None
    match = re.search(r"^VmRSS:\s+(\d+)\s+kB", text, re.MULTILINE)
    return round(int(match.group(1)) / 1024.0, 1) if match else None


def _served_top_k(payload: dict):
    """Byte-exact rendering of a served /explain response's top-k."""
    return tuple(
        (
            segment["start_label"],
            segment["stop_label"],
            tuple(
                (scored["explanation"], scored["gamma_hex"], scored["tau"])
                for scored in segment["explanations"]
            ),
        )
        for segment in payload["segments"]
    )


def _session_top_k(result):
    return tuple(
        (
            segment.start_label,
            segment.stop_label,
            tuple(
                (repr(s.explanation), s.gamma.hex(), s.tau)
                for s in segment.explanations
            ),
        )
        for segment in result.segments
    )


def bench_serve_throughput(benchmark):
    n_points = 480 if is_paper_scale() else 240
    n_categories = 1024 if is_paper_scale() else 256
    n_clients = 16 if is_paper_scale() else 8
    n_requests = 128 if is_paper_scale() else 64
    synthetic = generate_synthetic(
        seed=23, snr_db=40.0, n_points=n_points, n_categories=n_categories
    )
    dataset = synthetic.dataset
    config = ExplainConfig.optimized(k=3)

    # --- 1. sharded parallel build: byte-identical, timed ----------------
    started = time.perf_counter()
    one_shot = ExplanationCube(
        dataset.relation, dataset.explain_by, dataset.measure
    )
    one_shot_seconds = time.perf_counter() - started

    builder = ShardedBuilder(n_shards=4, max_workers=4, min_rows_per_shard=1)
    started = time.perf_counter()
    sharded = builder.build(
        dataset.relation, dataset.explain_by, dataset.measure
    )
    sharded_seconds = time.perf_counter() - started
    assert builder.last_report.n_shards == 4
    assert sharded.labels == one_shot.labels
    assert sharded.explanations == one_shot.explanations
    assert sharded.included_values.tobytes() == one_shot.included_values.tobytes()
    assert sharded.excluded_values.tobytes() == one_shot.excluded_values.tobytes()
    build_speedup = one_shot_seconds / sharded_seconds

    # --- 2. concurrent clients against a live server ----------------------
    spec = DatasetSpec.from_dataset(dataset, config=config)
    registry = SessionRegistry([spec])
    app = ServeApp(
        registry, QueryScheduler(registry, max_workers=n_clients), port=0
    ).start()
    try:
        url = f"{app.url}/explain?dataset={dataset.name}"

        started = time.perf_counter()
        cold_payload = _get_json(url)
        cold_seconds = time.perf_counter() - started

        latencies: list[float] = []

        def one_request(_):
            request_started = time.perf_counter()
            payload = _get_json(url)
            latencies.append(time.perf_counter() - request_started)
            return payload

        wall_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_clients) as clients:
            payloads = list(clients.map(one_request, range(n_requests)))
        wall_seconds = time.perf_counter() - wall_started
        throughput = n_requests / wall_seconds
        p50, p95 = (float(np.percentile(latencies, q)) for q in (50, 95))

        # Every concurrent answer is identical, and the cold build ran once.
        reference = _served_top_k(cold_payload)
        assert all(_served_top_k(p) == reference for p in payloads)
        stats = _get_json(f"{app.url}/stats")
        assert stats["registry"]["misses"] == 1

        warm_result = benchmark.pedantic(
            lambda: _get_json(url), rounds=5, iterations=1
        )
        assert _served_top_k(warm_result) == reference
    finally:
        app.shutdown()

    # --- 3. parity with a direct in-process session -----------------------
    direct = ExplainSession(
        dataset.relation,
        dataset.measure,
        dataset.explain_by,
        config=config,
    ).explain()
    assert reference == _session_top_k(direct)

    import os

    cores = os.cpu_count() or 1
    lines = [
        f"rows={dataset.relation.n_rows} epsilon={one_shot.n_explanations} "
        f"n={n_points} clients={n_clients} requests={n_requests} cores={cores}",
        f"one-shot build:            {one_shot_seconds * 1000:8.1f} ms",
        f"sharded build (4 shards, 4 procs): {sharded_seconds * 1000:8.1f} ms  "
        f"({build_speedup:.2f}x on {cores} core(s), byte-identical)",
        f"cold  /explain (build + query): {cold_seconds * 1000:8.1f} ms",
        f"warm  /explain p50:             {p50 * 1000:8.1f} ms",
        f"warm  /explain p95:             {p95 * 1000:8.1f} ms",
        f"throughput ({n_clients} concurrent clients): {throughput:8.1f} req/s",
        "served vs direct-session top-k: byte-identical",
        "cold builds for the client herd: 1 (single-flight)",
    ]
    emit("serve_throughput", "\n".join(lines))
    record = {
        "bench": "serve_throughput",
        "scale": scale(),
        "git_rev": git_rev(),
        "rows": dataset.relation.n_rows,
        "cores": cores,
        "clients": n_clients,
        "requests": n_requests,
        "sharded_build": {
            "one_shot_ms": round(one_shot_seconds * 1000, 3),
            "sharded_ms": round(sharded_seconds * 1000, 3),
            "speedup": round(build_speedup, 2),
            "byte_identical": True,
        },
        "http": {
            "cold_ms": round(cold_seconds * 1000, 3),
            "warm_p50_ms": round(p50 * 1000, 3),
            "warm_p95_ms": round(p95 * 1000, 3),
            "throughput_rps": round(throughput, 1),
            "cold_builds": 1,
        },
    }
    append_run(BENCH_JSON, record)
    benchmark.extra_info["build_speedup"] = round(build_speedup, 2)
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["throughput_rps"] = round(throughput, 1)
    benchmark.extra_info["warm_p50_ms"] = round(p50 * 1000, 2)
    benchmark.extra_info["warm_p95_ms"] = round(p95 * 1000, 2)


# ----------------------------------------------------------------------
# 4. multi-process worker sweep (through the real CLI)
# ----------------------------------------------------------------------
_LISTEN_RE = re.compile(r"listening on (http://[\d.]+:\d+)")
_PIDS_RE = re.compile(r"workers: \d+ \(pids ([\d, ]+)\)")


class _CliServer:
    """One ``repro serve`` subprocess; parses its URL and worker pids."""

    def __init__(self, uri: str, cache_dir: str, workers: int):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--datasets", uri, "--cache-dir", cache_dir,
                "--workers", str(workers), "--max-inflight", "64",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        self.url: str | None = None
        self.pids: list[int] = []
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError("repro serve exited before listening")
            if match := _LISTEN_RE.search(line):
                self.url = match.group(1)
            if match := _PIDS_RE.search(line):
                self.pids = [int(p) for p in match.group(1).split(",")]
            if self.url and (workers == 1 or self.pids):
                break
        if not self.url:
            raise RuntimeError("no listen line from repro serve")
        if not self.pids:
            self.pids = [self.proc.pid]

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGINT)
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()


def _canonical(payload: dict) -> dict:
    """A served /explain payload minus its wall-clock timings."""
    payload = dict(payload)
    payload.pop("timings", None)
    return payload


def bench_serve_worker_sweep(benchmark):
    if not reuseport_available():  # pragma: no cover - non-Linux fallback
        import pytest

        pytest.skip("SO_REUSEPORT unavailable; multi-process serve disabled")
    sweep = (1, 2, 4) if is_paper_scale() else (1, 2)
    n_clients = 8 if is_paper_scale() else 6
    n_requests = 96 if is_paper_scale() else 48
    n_points = 480 if is_paper_scale() else 240
    n_categories = 1024 if is_paper_scale() else 256
    synthetic = generate_synthetic(
        seed=23, snr_db=40.0, n_points=n_points, n_categories=n_categories
    )

    from repro.store.npz_source import write_npz

    points: list[dict] = []
    reference: dict | None = None
    with tempfile.TemporaryDirectory() as tmp:
        source_path = Path(tmp) / "sweep.npz"
        write_npz(synthetic.dataset.relation, source_path)
        uri = f"npz:{source_path}"
        cube_nbytes = None
        for workers in sweep:
            # A fresh cache dir per point would defeat the sweep's purpose:
            # every point shares the one finalized artifact, so points 2+
            # start warm (the paper-metric: artifact adoption, not rebuild).
            cache_dir = str(Path(tmp) / "cache")
            server = _CliServer(uri, cache_dir, workers)
            try:
                explain_url = f"{server.url}/explain?dataset={uri}"
                warmup = _canonical(_get_json(explain_url))
                if reference is None:
                    reference = warmup
                assert warmup == reference, "worker sweep answers diverged"

                latencies: list[float] = []

                def one_request(_):
                    started = time.perf_counter()
                    payload = _get_json(explain_url)
                    latencies.append(time.perf_counter() - started)
                    return payload

                wall_started = time.perf_counter()
                with ThreadPoolExecutor(max_workers=n_clients) as clients:
                    payloads = list(clients.map(one_request, range(n_requests)))
                wall_seconds = time.perf_counter() - wall_started
                assert all(_canonical(p) == reference for p in payloads)

                rss = [_rss_mb(pid) for pid in server.pids]
                stats = _get_json(f"{server.url}/stats")
                cube_nbytes = stats["registry"]["memory_bytes"]
                p50, p95, p99 = (
                    float(np.percentile(latencies, q)) for q in (50, 95, 99)
                )
                points.append(
                    {
                        "workers": workers,
                        "p50_ms": round(p50 * 1000, 3),
                        "p95_ms": round(p95 * 1000, 3),
                        "p99_ms": round(p99 * 1000, 3),
                        "throughput_rps": round(n_requests / wall_seconds, 1),
                        "per_worker_rss_mb": rss,
                    }
                )
            finally:
                server.stop()

        # One timed warm request through a fresh 2-worker pool for the
        # pytest-benchmark record.
        server = _CliServer(uri, str(Path(tmp) / "cache"), 2)
        try:
            explain_url = f"{server.url}/explain?dataset={uri}"
            _get_json(explain_url)  # warm both the artifact and the socket
            warm = benchmark.pedantic(
                lambda: _get_json(explain_url), rounds=5, iterations=1
            )
            assert _canonical(warm) == reference
        finally:
            server.stop()

    cores = os.cpu_count() or 1
    lines = [
        f"rows={synthetic.dataset.relation.n_rows} clients={n_clients} "
        f"requests={n_requests} cores={cores} "
        f"resident_cube={cube_nbytes / 1e6:.1f} MB (shared via artifact)"
    ]
    for point in points:
        rss_text = ", ".join(
            "n/a" if value is None else f"{value:.0f}" for value in point["per_worker_rss_mb"]
        )
        lines.append(
            f"workers={point['workers']}: p50 {point['p50_ms']:7.1f} ms  "
            f"p95 {point['p95_ms']:7.1f} ms  p99 {point['p99_ms']:7.1f} ms  "
            f"{point['throughput_rps']:6.1f} req/s  rss/worker [{rss_text}] MB"
        )
    lines.append("all sweep points answer identically (timings excluded)")
    emit("serve_worker_sweep", "\n".join(lines))
    append_run(
        BENCH_JSON,
        {
            "bench": "serve_worker_sweep",
            "scale": scale(),
            "git_rev": git_rev(),
            "rows": synthetic.dataset.relation.n_rows,
            "cores": cores,
            "clients": n_clients,
            "requests": n_requests,
            "resident_cube_bytes": cube_nbytes,
            "sweep": points,
        },
    )
    benchmark.extra_info["sweep"] = json.dumps(points)
