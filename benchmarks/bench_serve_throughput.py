"""Serving-tier load test: parallel sharded builds + concurrent clients.

The serving tier's claims, measured end to end over real HTTP:

1. the **sharded parallel cold build** produces a cube byte-identical to
   the one-shot build (asserted on the raw arrays) while spreading the
   work across worker processes — the wall-clock ratio is reported, with
   the machine's CPU count for context (a single-core container or a
   tiny input cannot show a speedup; multi-core CI and paper scale do);
2. the first ``/explain`` for a dataset pays the cold build once
   (single-flight: a whole herd of concurrent clients triggers exactly
   one prepare), after which **warm** requests are served from the
   session LRU orders of magnitude faster — cold latency vs warm
   p50/p95 and aggregate requests/second are reported;
3. the served answers carry **byte-identical** top-k explanations
   (``float.hex`` comparison over HTTP JSON) to a direct in-process
   :class:`ExplainSession` over the same data and configuration.
"""

import json
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.datacube import ExplanationCube
from repro.datasets.synthetic import generate_synthetic
from repro.serve.http import ServeApp
from repro.serve.registry import DatasetSpec, SessionRegistry
from repro.serve.scheduler import QueryScheduler
from repro.serve.sharding import ShardedBuilder
from support import emit, is_paper_scale, scale

BENCH_JSON = Path(__file__).parent / "BENCH_serve.json"


def _get_json(url: str):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


def _served_top_k(payload: dict):
    """Byte-exact rendering of a served /explain response's top-k."""
    return tuple(
        (
            segment["start_label"],
            segment["stop_label"],
            tuple(
                (scored["explanation"], scored["gamma_hex"], scored["tau"])
                for scored in segment["explanations"]
            ),
        )
        for segment in payload["segments"]
    )


def _session_top_k(result):
    return tuple(
        (
            segment.start_label,
            segment.stop_label,
            tuple(
                (repr(s.explanation), s.gamma.hex(), s.tau)
                for s in segment.explanations
            ),
        )
        for segment in result.segments
    )


def bench_serve_throughput(benchmark):
    n_points = 480 if is_paper_scale() else 240
    n_categories = 1024 if is_paper_scale() else 256
    n_clients = 16 if is_paper_scale() else 8
    n_requests = 128 if is_paper_scale() else 64
    synthetic = generate_synthetic(
        seed=23, snr_db=40.0, n_points=n_points, n_categories=n_categories
    )
    dataset = synthetic.dataset
    config = ExplainConfig.optimized(k=3)

    # --- 1. sharded parallel build: byte-identical, timed ----------------
    started = time.perf_counter()
    one_shot = ExplanationCube(
        dataset.relation, dataset.explain_by, dataset.measure
    )
    one_shot_seconds = time.perf_counter() - started

    builder = ShardedBuilder(n_shards=4, max_workers=4, min_rows_per_shard=1)
    started = time.perf_counter()
    sharded = builder.build(
        dataset.relation, dataset.explain_by, dataset.measure
    )
    sharded_seconds = time.perf_counter() - started
    assert builder.last_report.n_shards == 4
    assert sharded.labels == one_shot.labels
    assert sharded.explanations == one_shot.explanations
    assert sharded.included_values.tobytes() == one_shot.included_values.tobytes()
    assert sharded.excluded_values.tobytes() == one_shot.excluded_values.tobytes()
    build_speedup = one_shot_seconds / sharded_seconds

    # --- 2. concurrent clients against a live server ----------------------
    spec = DatasetSpec.from_dataset(dataset, config=config)
    registry = SessionRegistry([spec])
    app = ServeApp(
        registry, QueryScheduler(registry, max_workers=n_clients), port=0
    ).start()
    try:
        url = f"{app.url}/explain?dataset={dataset.name}"

        started = time.perf_counter()
        cold_payload = _get_json(url)
        cold_seconds = time.perf_counter() - started

        latencies: list[float] = []

        def one_request(_):
            request_started = time.perf_counter()
            payload = _get_json(url)
            latencies.append(time.perf_counter() - request_started)
            return payload

        wall_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_clients) as clients:
            payloads = list(clients.map(one_request, range(n_requests)))
        wall_seconds = time.perf_counter() - wall_started
        throughput = n_requests / wall_seconds
        p50, p95 = (float(np.percentile(latencies, q)) for q in (50, 95))

        # Every concurrent answer is identical, and the cold build ran once.
        reference = _served_top_k(cold_payload)
        assert all(_served_top_k(p) == reference for p in payloads)
        stats = _get_json(f"{app.url}/stats")
        assert stats["registry"]["misses"] == 1

        warm_result = benchmark.pedantic(
            lambda: _get_json(url), rounds=5, iterations=1
        )
        assert _served_top_k(warm_result) == reference
    finally:
        app.shutdown()

    # --- 3. parity with a direct in-process session -----------------------
    direct = ExplainSession(
        dataset.relation,
        dataset.measure,
        dataset.explain_by,
        config=config,
    ).explain()
    assert reference == _session_top_k(direct)

    import os

    cores = os.cpu_count() or 1
    lines = [
        f"rows={dataset.relation.n_rows} epsilon={one_shot.n_explanations} "
        f"n={n_points} clients={n_clients} requests={n_requests} cores={cores}",
        f"one-shot build:            {one_shot_seconds * 1000:8.1f} ms",
        f"sharded build (4 shards, 4 procs): {sharded_seconds * 1000:8.1f} ms  "
        f"({build_speedup:.2f}x on {cores} core(s), byte-identical)",
        f"cold  /explain (build + query): {cold_seconds * 1000:8.1f} ms",
        f"warm  /explain p50:             {p50 * 1000:8.1f} ms",
        f"warm  /explain p95:             {p95 * 1000:8.1f} ms",
        f"throughput ({n_clients} concurrent clients): {throughput:8.1f} req/s",
        "served vs direct-session top-k: byte-identical",
        "cold builds for the client herd: 1 (single-flight)",
    ]
    emit("serve_throughput", "\n".join(lines))
    record = {
        "scale": scale(),
        "rows": dataset.relation.n_rows,
        "cores": cores,
        "clients": n_clients,
        "requests": n_requests,
        "sharded_build": {
            "one_shot_ms": round(one_shot_seconds * 1000, 3),
            "sharded_ms": round(sharded_seconds * 1000, 3),
            "speedup": round(build_speedup, 2),
            "byte_identical": True,
        },
        "http": {
            "cold_ms": round(cold_seconds * 1000, 3),
            "warm_p50_ms": round(p50 * 1000, 3),
            "warm_p95_ms": round(p95 * 1000, 3),
            "throughput_rps": round(throughput, 1),
            "cold_builds": 1,
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    benchmark.extra_info["build_speedup"] = round(build_speedup, 2)
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["throughput_rps"] = round(throughput, 1)
    benchmark.extra_info["warm_p50_ms"] = round(p50 * 1000, 2)
    benchmark.extra_info["warm_p95_ms"] = round(p95 * 1000, 2)
