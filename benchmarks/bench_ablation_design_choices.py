"""Ablations of the reproduction's notable design choices.

1. Support-filter ratio: epsilon shrinkage vs result quality.
2. Guess-and-verify initial prefix size: verification rounds vs latency.
3. Sketch parameters (L, |S|): latency vs full-resolution variance.
4. Explanation quota m: how the segmentation reacts to m=1..5.
"""

import time

import numpy as np

from repro.ca.guess_verify import GuessAndVerify
from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.cube.datacube import ExplanationCube
from repro.cube.filters import apply_support_filter
from repro.diff.scorer import SegmentScorer
from support import emit, real_dataset, with_smoothing


def bench_ablation_filter_ratio(benchmark):
    ds = real_dataset("liquor")

    def run():
        cube = ExplanationCube(ds.relation, ds.explain_by, ds.measure)
        rows = []
        for ratio in (0.0, 0.0005, 0.001, 0.005, 0.02):
            filtered = apply_support_filter(cube, ratio)
            rows.append((ratio, cube.n_explanations, filtered.n_explanations))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'ratio':>8s} {'eps':>6s} {'kept':>6s}"]
    for ratio, epsilon, kept in rows:
        lines.append(f"{ratio:>8g} {epsilon:>6d} {kept:>6d}")
    emit("ablation_filter_ratio", "\n".join(lines))
    kept_counts = [kept for _, _, kept in rows]
    assert kept_counts == sorted(kept_counts, reverse=True)


def bench_ablation_initial_guess(benchmark):
    ds = real_dataset("sp500")
    cube = apply_support_filter(ExplanationCube(ds.relation, ds.explain_by, ds.measure))
    scorer = SegmentScorer(cube)
    n = cube.n_times
    rng = np.random.default_rng(0)
    starts = rng.integers(0, n - 2, size=64)
    stops = starts + rng.integers(1, n - 1 - starts)
    gammas = np.abs(cube.signed_contributions_many(starts, stops)).T

    def run():
        rows = []
        for guess in (5, 15, 30, 60, 120):
            solver = GuessAndVerify(cube.explanations, m=3, initial_guess=guess)
            started = time.perf_counter()
            solver.solve_batch(gammas)
            rows.append((guess, solver.iterations, time.perf_counter() - started))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'m_bar':>6s} {'rounds':>7s} {'seconds':>9s}"]
    for guess, rounds, seconds in rows:
        lines.append(f"{guess:>6d} {rounds:>7d} {seconds:>9.3f}")
    emit("ablation_initial_guess", "\n".join(lines))
    # Larger initial guesses never need more verification rounds.
    round_counts = [rounds for _, rounds, _ in rows]
    assert round_counts == sorted(round_counts, reverse=True)
    del scorer


def bench_ablation_sketch_parameters(benchmark):
    ds = real_dataset("covid-total")

    def run():
        rows = []
        for length, size in ((None, None), (10, 120), (20, 60), (40, 30)):
            config = ExplainConfig.o2(sketch_length=length, sketch_size=size)
            started = time.perf_counter()
            result = ExplainPipeline(
                ds.relation, ds.measure, ds.explain_by, config=config
            ).run()
            rows.append(
                (
                    length or "auto",
                    size or "auto",
                    time.perf_counter() - started,
                    result.total_variance,
                    result.k,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'L':>6} {'|S|':>6} {'seconds':>9s} {'variance':>10s} {'K':>3s}"]
    for length, size, seconds, variance, k in rows:
        lines.append(f"{length!s:>6} {size!s:>6} {seconds:>9.2f} {variance:>10.4f} {k:>3d}")
    emit("ablation_sketch_parameters", "\n".join(lines))
    variances = [variance for *_, variance, _ in rows]
    assert max(variances) / min(variances) < 2.0  # quality stays in range


def bench_ablation_top_m(benchmark):
    ds = real_dataset("covid-total")

    def run():
        rows = []
        for m in (1, 2, 3, 5):
            config = with_smoothing(ds, ExplainConfig.optimized(m=m))
            result = ExplainPipeline(
                ds.relation, ds.measure, ds.explain_by, config=config
            ).run()
            rows.append((m, result.k, list(result.cuts)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'m':>3s} {'K':>3s}  cuts"]
    for m, k, cuts in rows:
        lines.append(f"{m:>3d} {k:>3d}  {cuts}")
    emit("ablation_top_m", "\n".join(lines))
    assert all(2 <= k <= 10 for _, k, _ in rows)
