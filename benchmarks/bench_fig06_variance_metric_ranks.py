"""Figure 6: average relative rank (1 = best) of the eight variance
designs across SNR levels, using the ground-truth-rank protocol.

Paper result: all metrics reach rank 1 at SNR 50; ``tse`` holds the best
average rank at every noise level.
"""

from collections import defaultdict

from repro.datasets.synthetic import SNR_LEVELS, synthetic_suite
from repro.evaluation.rank import relative_metric_ranks, variance_design_ranks
from repro.segmentation.distance import VARIANTS
from support import emit, is_paper_scale


def bench_fig06_variance_metric_ranks(benchmark):
    if is_paper_scale():
        n_datasets, n_samples, snr_levels = 20, 10_000, SNR_LEVELS
    else:
        n_datasets, n_samples, snr_levels = 3, 800, (20, 35, 50)

    def run():
        suite = synthetic_suite(n_datasets=n_datasets, snr_levels=snr_levels)
        sums: dict[tuple[float, str], float] = defaultdict(float)
        counts: dict[float, int] = defaultdict(int)
        for data in suite:
            ranks = variance_design_ranks(data, VARIANTS, n_samples=n_samples)
            relative = relative_metric_ranks(ranks)
            for variant, rank in relative.items():
                sums[(data.snr_db, variant)] += rank
            counts[data.snr_db] += 1
        return {
            snr: {v: sums[(snr, v)] / counts[snr] for v in VARIANTS}
            for snr in sorted(counts)
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    header = "SNR   " + "".join(f"{v:>9s}" for v in VARIANTS)
    lines = [header]
    for snr, row in table.items():
        lines.append(f"{snr:<5g} " + "".join(f"{row[v]:9.2f}" for v in VARIANTS))
    tse_wins = sum(
        1 for row in table.values() if row["tse"] <= min(row.values()) + 1e-9
    )
    lines.append(
        f"tse has the best (lowest) average rank at {tse_wins}/{len(table)} SNR levels"
    )
    emit("fig06_variance_metric_ranks", "\n".join(lines))
    benchmark.extra_info["tse_wins"] = tse_wins
    # Paper takeaway: tse is the most effective metric overall.
    assert tse_wins >= len(table) - 1
