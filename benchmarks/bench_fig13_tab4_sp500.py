"""Figure 13 + Table 4: segmentation of the S&P 500 index.

Paper result: K=4 — rise (technology/internet retail +, energy -), crash
(technology/financial/communication -), recovery (technology/consumer
cyclical/communication + but *not* financial), pullback (technology -).
"""

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.viz.report import explanation_table, k_variance_table
from support import emit, real_dataset


def bench_fig13_tab4_sp500(benchmark):
    ds = real_dataset("sp500")
    engine = TSExplain(
        ds.relation,
        measure=ds.measure,
        explain_by=ds.explain_by,
        config=ExplainConfig.optimized(),
    )
    result = benchmark.pedantic(engine.explain, rounds=1, iterations=1)

    lines = [
        f"TSExplain: K={result.k} (auto={result.k_was_auto}), "
        f"cuts at {[str(l) for l in result.cut_labels]}",
        explanation_table(result),
        "",
        k_variance_table(result),
    ]
    emit("fig13_tab4_sp500", "\n".join(lines))
    benchmark.extra_info["k"] = result.k

    assert 3 <= result.k <= 6
    # The crash segment: largest drop, led by technology with effect '-'.
    drops = [
        result.series.values[s.stop] - result.series.values[s.start]
        for s in result.segments
    ]
    crash = result.segments[int(np.argmin(drops))]
    crash_tops = [repr(s.explanation) for s in crash.explanations]
    assert any("technology" in t for t in crash_tops)
    # The recovery segment: largest rise, technology again but with '+'.
    recovery = result.segments[int(np.argmax(drops))]
    recovery_tops = [repr(s.explanation) for s in recovery.explanations]
    assert any("technology" in t for t in recovery_tops)
    assert not any("financial" in t for t in recovery_tops)  # no fin. rebound
