"""Columnar cube build vs. the row-loop reference, plus the rollup cache.

Three claims are measured on a synthetic dataset:

1. the vectorized columnar build (factorized dimension codes +
   ``np.add.at`` scatter + per-subset batch finalize) beats a faithful
   reimplementation of the row-at-a-time build by >= 5x while producing
   numerically identical included/excluded series;
2. a warm rollup cache turns ``explain()``'s prepare phase into a disk
   load that skips the build entirely (``pipeline.cache_hit``);
3. cached and uncached runs return **byte-identical** top-k explanations
   (``float.hex`` comparison, no tolerance).
"""

import tempfile
import time

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.cube.datacube import ExplanationCube
from repro.cube.explanations import enumerate_candidates
from repro.datasets.synthetic import generate_synthetic
from support import emit, is_paper_scale


def rowloop_build(relation, explain_by, measure):
    """The pre-columnar reference: iterate Python rows once per candidate.

    This is the access pattern the columnar build replaces — an OLAP tool
    recomputing each candidate's aggregated series by scanning the
    relation row by row.  Kept here (not in the library) as the
    benchmark's ground truth.
    """
    candidates = enumerate_candidates(relation, explain_by)
    time_positions, labels = relation.time_positions(None)
    n_times = len(labels)
    values = relation.column(measure)
    columns = {name: relation.column(name) for name in explain_by}

    overall = np.zeros(n_times)
    for row in range(relation.n_rows):
        overall[time_positions[row]] += float(values[row])

    included = np.zeros((len(candidates), n_times))
    for position, conjunction in enumerate(candidates.explanations):
        items = conjunction.items
        for row in range(relation.n_rows):
            if all(columns[name][row] == value for name, value in items):
                included[position, time_positions[row]] += float(values[row])
    return included, overall[None, :] - included


def _top_k_fingerprint(result):
    """Byte-exact rendering of every segment's top explanations."""
    return tuple(
        (
            segment.start,
            segment.stop,
            tuple(
                (repr(s.explanation), s.gamma.hex(), s.tau)
                for s in segment.explanations
            ),
        )
        for segment in result.segments
    )


def bench_cube_build(benchmark):
    n_categories = 96 if is_paper_scale() else 48
    synthetic = generate_synthetic(
        seed=7, snr_db=40.0, n_points=120, n_categories=n_categories
    )
    dataset = synthetic.dataset
    relation = dataset.relation
    explain_by = list(dataset.explain_by)
    measure = dataset.measure

    # --- 1. columnar vs row-loop -------------------------------------
    started = time.perf_counter()
    reference_included, reference_excluded = rowloop_build(
        relation, explain_by, measure
    )
    rowloop_seconds = time.perf_counter() - started

    def columnar_build():
        return ExplanationCube(relation, explain_by, measure)

    cube = benchmark.pedantic(columnar_build, rounds=3, iterations=1)
    started = time.perf_counter()
    columnar_build()
    columnar_seconds = time.perf_counter() - started

    assert np.allclose(cube.included_values, reference_included)
    assert np.allclose(cube.excluded_values, reference_excluded)
    speedup = rowloop_seconds / columnar_seconds

    started = time.perf_counter()
    ExplanationCube(relation, explain_by, measure, columnar=False)
    legacy_seconds = time.perf_counter() - started

    # --- 2 + 3. rollup cache: warm explain skips the build -----------
    with tempfile.TemporaryDirectory() as cache_dir:
        config = ExplainConfig(k=synthetic.k, cache_dir=cache_dir)

        uncached = ExplainPipeline(
            relation, measure, explain_by, config=config.updated(cache_dir=None)
        ).run()

        cold_pipeline = ExplainPipeline(relation, measure, explain_by, config=config)
        started = time.perf_counter()
        cold = cold_pipeline.run()
        cold_seconds = time.perf_counter() - started

        warm_pipeline = ExplainPipeline(relation, measure, explain_by, config=config)
        started = time.perf_counter()
        warm = warm_pipeline.run()
        warm_seconds = time.perf_counter() - started

    assert cold_pipeline.cache_hit is False
    assert warm_pipeline.cache_hit is True  # the build was skipped entirely
    assert (
        _top_k_fingerprint(uncached)
        == _top_k_fingerprint(cold)
        == _top_k_fingerprint(warm)
    )

    lines = [
        f"rows={relation.n_rows} epsilon={cube.n_explanations} n={cube.n_times}",
        f"row-loop build:        {rowloop_seconds * 1000:8.1f} ms",
        f"legacy finalize loop:  {legacy_seconds * 1000:8.1f} ms",
        f"columnar build:        {columnar_seconds * 1000:8.1f} ms",
        f"speedup (row-loop -> columnar): {speedup:.1f}x",
        f"explain cold (build+store):  {cold_seconds * 1000:8.1f} ms "
        f"(prepare {cold.timings['precomputation'] * 1000:.1f} ms)",
        f"explain warm (cache load):   {warm_seconds * 1000:8.1f} ms "
        f"(prepare {warm.timings['precomputation'] * 1000:.1f} ms)",
        "cached vs uncached top-k: byte-identical",
    ]
    emit("cube_build", "\n".join(lines))
    benchmark.extra_info["rowloop_speedup"] = round(speedup, 1)
    benchmark.extra_info["warm_cache_hit"] = True

    assert speedup >= 5.0
