"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  Output goes three ways: printed to stdout (visible with
``pytest -s``), written under ``benchmarks/results/``, and attached to the
pytest-benchmark record via ``extra_info``.

Scale control
-------------
``REPRO_BENCH_SCALE=small`` (default) keeps every harness minutes-scale in
pure Python; ``REPRO_BENCH_SCALE=paper`` uses the paper's full parameters
(20 datasets per SNR level, 10 000 sampled schemes, series up to length
6400, the full-size liquor simulation).
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

from repro.core.config import ExplainConfig
from repro.datasets.base import Dataset
from repro.datasets.registry import load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

REPO_ROOT = Path(__file__).parent.parent


def git_rev() -> str | None:
    """Short git revision for trajectory records (None outside a checkout).

    Every ``BENCH_*.json`` record carries this so ``repro bench check``
    failures point at the commit that appended the regressing record.
    """
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None

#: The five optimization configurations of Figure 15.
CONFIGURATIONS: tuple[tuple[str, ExplainConfig], ...] = (
    ("Vanilla", ExplainConfig.vanilla()),
    ("w filter", ExplainConfig.with_filter()),
    ("O1", ExplainConfig.o1()),
    ("O2", ExplainConfig.o2()),
    ("O1+O2", ExplainConfig.optimized()),
)


def scale() -> str:
    """Benchmark scale: ``small`` (default) or ``paper``."""
    value = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    return value if value in ("small", "paper") else "small"


def is_paper_scale() -> bool:
    return scale() == "paper"


def emit(name: str, text: str) -> str:
    """Print a report block and persist it under ``benchmarks/results/``."""
    banner = f"\n===== {name} (scale={scale()}) ====="
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return text


def append_run(path: Path, record: dict) -> list[dict]:
    """Append one run record to a ``BENCH_*.json`` trajectory file.

    The file holds a JSON *list* of run records, newest last, so repeated
    runs build a perf trajectory instead of overwriting the previous
    measurement.  A legacy single-record file (one dict) is migrated to a
    one-element list; an unreadable file starts a fresh trajectory.
    Returns the full trajectory as written.
    """
    runs: list[dict] = []
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(existing, list):
            runs = [run for run in existing if isinstance(run, dict)]
        elif isinstance(existing, dict):
            runs = [existing]
    except (OSError, ValueError):
        runs = []
    runs.append(record)
    path.write_text(json.dumps(runs, indent=2) + "\n", encoding="utf-8")
    return runs


def real_dataset(name: str) -> Dataset:
    """Load a real-world simulation at the current scale."""
    if name == "liquor":
        n_products = 1600 if is_paper_scale() else 450
        return load_dataset("liquor", n_products=n_products)
    return load_dataset(name)


def with_smoothing(dataset: Dataset, config: ExplainConfig) -> ExplainConfig:
    """Attach the dataset's recommended smoothing window to a config."""
    if dataset.smoothing_window is not None:
        return config.updated(smoothing_window=dataset.smoothing_window)
    return config
