"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  Output goes three ways: printed to stdout (visible with
``pytest -s``), written under ``benchmarks/results/``, and attached to the
pytest-benchmark record via ``extra_info``.

Scale control
-------------
``REPRO_BENCH_SCALE=small`` (default) keeps every harness minutes-scale in
pure Python; ``REPRO_BENCH_SCALE=paper`` uses the paper's full parameters
(20 datasets per SNR level, 10 000 sampled schemes, series up to length
6400, the full-size liquor simulation).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.config import ExplainConfig
from repro.datasets.base import Dataset
from repro.datasets.registry import load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: The five optimization configurations of Figure 15.
CONFIGURATIONS: tuple[tuple[str, ExplainConfig], ...] = (
    ("Vanilla", ExplainConfig.vanilla()),
    ("w filter", ExplainConfig.with_filter()),
    ("O1", ExplainConfig.o1()),
    ("O2", ExplainConfig.o2()),
    ("O1+O2", ExplainConfig.optimized()),
)


def scale() -> str:
    """Benchmark scale: ``small`` (default) or ``paper``."""
    value = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    return value if value in ("small", "paper") else "small"


def is_paper_scale() -> bool:
    return scale() == "paper"


def emit(name: str, text: str) -> str:
    """Print a report block and persist it under ``benchmarks/results/``."""
    banner = f"\n===== {name} (scale={scale()}) ====="
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return text


def real_dataset(name: str) -> Dataset:
    """Load a real-world simulation at the current scale."""
    if name == "liquor":
        n_products = 1600 if is_paper_scale() else 450
        return load_dataset("liquor", n_products=n_products)
    return load_dataset(name)


def with_smoothing(dataset: Dataset, config: ExplainConfig) -> ExplainConfig:
    """Attach the dataset's recommended smoothing window to a config."""
    if dataset.smoothing_window is not None:
        return config.updated(smoothing_window=dataset.smoothing_window)
    return config
