"""Section 7.4.4: sensitivity to K — "a slight change of the optimal K
will only bring up a slight shift in the results, e.g., remove or add one
cutting point if K minuses/adds 1"."""

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from support import emit, real_dataset


def bench_sec744_k_sensitivity(benchmark):
    ds = real_dataset("covid-total")
    engine = TSExplain(
        ds.relation,
        measure=ds.measure,
        explain_by=ds.explain_by,
        config=ExplainConfig.optimized(),
    )

    def run():
        auto = engine.explain()
        k = auto.k
        minus = engine.explain(config=ExplainConfig.optimized(k=k - 1))
        plus = engine.explain(config=ExplainConfig.optimized(k=k + 1))
        return auto, minus, plus

    auto, minus, plus = benchmark.pedantic(run, rounds=1, iterations=1)

    def shared(cuts_a, cuts_b, tolerance=3):
        return sum(
            1 for c in cuts_a if any(abs(c - d) <= tolerance for d in cuts_b)
        )

    lines = [
        f"K*={auto.k}: cuts {list(auto.cuts)}",
        f"K*-1 : cuts {list(minus.cuts)} ({shared(minus.cuts, auto.cuts)} shared)",
        f"K*+1 : cuts {list(plus.cuts)} ({shared(plus.cuts, auto.cuts)} shared)",
    ]
    emit("sec744_k_sensitivity", "\n".join(lines))

    # Removing/adding one segment keeps most cutting points in place.
    assert shared(minus.cuts, auto.cuts) >= len(minus.cuts) - 1
    assert shared(auto.cuts, plus.cuts) >= len(auto.cuts) - 1
