"""Figure 12 + Table 3: segmentation of Covid daily-confirmed-cases.

Paper result: K=7; the spring wave (NY/NJ/MA +) flips sign after its peak
(NY/NJ -), summer belongs to FL/TX/CA, fall to IL/TX/WI, and the holiday
wave to CA (+).
"""

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.viz.report import explanation_table, segment_sparklines
from support import emit, real_dataset, with_smoothing


def bench_fig12_tab3_covid_daily(benchmark):
    ds = real_dataset("covid-daily")
    config = with_smoothing(ds, ExplainConfig.optimized())
    engine = TSExplain(
        ds.relation, measure=ds.measure, explain_by=ds.explain_by, config=config
    )
    result = benchmark.pedantic(engine.explain, rounds=1, iterations=1)

    lines = [
        f"TSExplain: K={result.k} (auto={result.k_was_auto}), smoothing window "
        f"{config.smoothing_window}",
        explanation_table(result),
        "",
        segment_sparklines(result),
    ]
    emit("fig12_tab3_covid_daily", "\n".join(lines))
    benchmark.extra_info["k"] = result.k

    assert 5 <= result.k <= 9
    # Both effects must appear: waves rise (+) and recede (-).
    effects = {
        scored.effect_symbol
        for segment in result.segments
        for scored in segment.explanations
    }
    assert {"+", "-"} <= effects
    tops = [repr(s.explanations[0].explanation) for s in result.segments]
    assert any("New York" in t for t in tops[:3])
