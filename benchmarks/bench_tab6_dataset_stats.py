"""Table 6: dataset statistics — candidate count epsilon, filtered epsilon,
and time series length n.

Paper values: covid 58/54-55/345, S&P 500 610/329/151, Liquor 8197/1812/128.
Our simulations reproduce the cardinalities except where the dataset modules' docstrings record
a substitution (S&P has 190 trading days without the paper's data gaps;
liquor's epsilon scales with the simulated product count).
"""

from repro.cube.datacube import ExplanationCube
from repro.cube.filters import apply_support_filter
from support import emit, real_dataset


def bench_tab6_dataset_stats(benchmark):
    names = ("covid-total", "covid-daily", "sp500", "liquor")

    def run():
        rows = []
        for name in names:
            ds = real_dataset(name)
            cube = ExplanationCube(
                ds.relation, ds.explain_by, ds.measure, aggregate=ds.aggregate
            )
            filtered = apply_support_filter(cube)
            rows.append(
                (name, cube.n_explanations, filtered.n_explanations, cube.n_times)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'dataset':<14s} {'eps':>6s} {'filtered eps':>13s} {'n':>5s}"]
    for name, epsilon, filtered, n in rows:
        lines.append(f"{name:<14s} {epsilon:>6d} {filtered:>13d} {n:>5d}")
    emit("tab6_dataset_stats", "\n".join(lines))

    stats = {name: (epsilon, filtered, n) for name, epsilon, filtered, n in rows}
    assert stats["covid-total"] == (58, 58, 345)  # paper: 58 / 54 / 345
    assert stats["sp500"][0] == 610  # paper: 610 candidates exactly
    assert stats["liquor"][2] == 128  # paper: n = 128
    for name, (epsilon, filtered, _) in stats.items():
        assert filtered <= epsilon, name
