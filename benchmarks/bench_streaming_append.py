"""Streaming appends: warm incremental updates vs full rebuilds.

Paper section 8 promises that when new data arrives the system
"incrementally computes the top explanations for the new time series"
instead of re-running from scratch.  Three claims are measured on a
growing synthetic stream:

1. a **warm** :meth:`StreamingExplainer.update` with a one-day delta is
   at least 10x faster than :meth:`StreamingExplainer.refresh` (the full
   batch rebuild) over the same grown stream;
2. with ``resegment="full"`` the incremental and full-rebuild paths carry
   **byte-identical** top-k explanations, boundaries and K
   (``float.hex`` comparison, no tolerance) — the appended cube, the
   extended segment costs and the shared scheme selection reproduce the
   batch pipeline bit for bit;
3. per-update cost tracks the **delta size, not the stream length**: a
   two-day delta costs about twice a one-day delta, while both stay far
   under the rebuild, whose cost tracks the total length.
"""

import time
from pathlib import Path

from repro.core.config import ExplainConfig
from repro.core.streaming import StreamingExplainer
from repro.datasets.synthetic import generate_synthetic
from support import append_run, emit, git_rev, is_paper_scale, scale

BENCH_JSON = Path(__file__).parent / "BENCH_streaming.json"


def _top_k_fingerprint(result):
    """Byte-exact rendering of every segment's top explanations."""
    return tuple(
        (
            segment.start_label,
            segment.stop_label,
            tuple(
                (repr(s.explanation), s.gamma.hex(), s.tau)
                for s in segment.explanations
            ),
        )
        for segment in result.segments
    )


def _day_slices(relation, first_day, last_day):
    """One delta relation per day in ``[first_day, last_day)``."""
    positions, _ = relation.time_positions(None)
    return [relation.take(positions == day) for day in range(first_day, last_day)]


def bench_streaming_append(benchmark):
    n_points = 720 if is_paper_scale() else 300
    n_categories = 256 if is_paper_scale() else 64
    synthetic = generate_synthetic(
        seed=23, snr_db=40.0, n_points=n_points, n_categories=n_categories
    )
    dataset = synthetic.dataset
    relation = dataset.relation
    measure = dataset.measure
    explain_by = list(dataset.explain_by)
    config = ExplainConfig(k=3, use_filter=False)

    n_warm = 3  # updates that warm the incremental structures
    n_timed = 3
    first_streamed = n_points - (n_warm + n_timed + 2)
    positions, _ = relation.time_positions(None)
    base = relation.take(positions < first_streamed)
    deltas = _day_slices(relation, first_streamed, n_points)

    explainer = StreamingExplainer(
        base, measure, explain_by, config=config, resegment="full"
    )
    explainer.refresh()
    for delta in deltas[:n_warm]:
        explainer.update(delta)  # first update builds the full-grid costs

    # --- warm incremental updates, one day per update -------------------
    update_seconds = []
    for delta in deltas[n_warm : n_warm + n_timed]:
        started = time.perf_counter()
        incremental = explainer.update(delta)
        update_seconds.append(time.perf_counter() - started)
    update_best = min(update_seconds)

    # --- a two-day delta: cost should track the delta, not the stream ---
    two_day = deltas[n_warm + n_timed].concat(deltas[n_warm + n_timed + 1])
    started = time.perf_counter()
    incremental = explainer.update(two_day)
    two_day_seconds = time.perf_counter() - started

    # The official pytest-benchmark number: one warm 1-day update, with
    # the pre-update stream state rebuilt in setup each round (updates
    # mutate the explainer, so the target is not repeatable in place).
    pre_update = relation.take(positions < n_points - 2)
    last_day = deltas[-1]

    def setup():
        warm = StreamingExplainer(
            pre_update, measure, explain_by, config=config, resegment="full"
        )
        warm.refresh()
        warm.update(deltas[-2])  # builds the incremental cost structures
        return (warm,), {}

    benchmark.pedantic(
        lambda warm: warm.update(last_day), setup=setup, rounds=2, iterations=1
    )

    # --- the executable spec: full rebuild over the same stream ---------
    rebuild_seconds = []
    full = None
    for _ in range(3):
        started = time.perf_counter()
        full = StreamingExplainer(
            explainer.relation, measure, explain_by, config=config
        ).refresh()
        rebuild_seconds.append(time.perf_counter() - started)
    rebuild_best = min(rebuild_seconds)

    speedup = rebuild_best / update_best

    # --- identical answers, byte for byte -------------------------------
    assert _top_k_fingerprint(incremental) == _top_k_fingerprint(full)
    assert incremental.boundaries == full.boundaries
    assert incremental.k == full.k

    lines = [
        f"rows={explainer.relation.n_rows} n={len(incremental.series)} "
        f"categories={n_categories} stream tail={n_warm + n_timed + 2} days",
        f"full rebuild (refresh):          {rebuild_best * 1000:8.1f} ms",
        f"warm update (1-day delta):       {update_best * 1000:8.1f} ms",
        f"warm update (2-day delta):       {two_day_seconds * 1000:8.1f} ms",
        f"speedup (rebuild -> update): {speedup:.1f}x",
        "incremental vs full-rebuild top-k: byte-identical "
        f"(K={incremental.k}, boundaries={list(incremental.boundaries)})",
    ]
    emit("streaming_append", "\n".join(lines))
    benchmark.extra_info["streaming_speedup"] = round(speedup, 1)

    record = {
        "bench": "streaming_append",
        "scale": scale(),
        "git_rev": git_rev(),
        "rows": explainer.relation.n_rows,
        "n_points": len(incremental.series),
        "categories": n_categories,
        "full_rebuild_ms": round(rebuild_best * 1000, 3),
        "warm_update_1day_ms": round(update_best * 1000, 3),
        "warm_update_2day_ms": round(two_day_seconds * 1000, 3),
        "speedup": round(speedup, 1),
        "byte_identical_top_k": True,
    }
    append_run(BENCH_JSON, record)

    assert speedup >= 10.0
