"""Cold ingestion through the storage layer vs. the seed row loop.

Four claims are measured on a >= 500k-row synthetic table:

1. the column-batched CSV parse (``CsvSource`` / the rewritten
   ``read_csv``) beats the seed ``csv.DictReader`` row loop;
2. the ``npz`` columnar snapshot (``repro store convert``) loads >= 3x
   faster than the seed row loop — memory-mapped, so measure columns are
   paged lazily;
3. SQLite pushdown ingests only what the query needs (column projection,
   WHERE, and GROUP-BY pre-aggregation, which hands the cube pre-reduced
   rows);
4. the chunked out-of-core cube build is **byte-identical** to the
   in-memory build (cube arrays and top-k explanations, ``float.hex``
   comparison) while peak relation residency stays bounded by the chunk
   size (tracemalloc peaks reported).
"""

import csv
import gc
import time
import tracemalloc

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.datacube import ExplanationCube
from repro.relation.csvio import write_csv
from repro.relation.schema import Schema
from repro.relation.table import Relation
from repro.store import (
    CsvSource,
    NpzSource,
    SqliteSource,
    convert,
    load_or_build_from_source,
)
from support import emit, is_paper_scale

#: Rows per ingestion chunk for the out-of-core build.
CHUNK_ROWS = 50_000


def synthetic_table(n_rows: int) -> Relation:
    """A time-ordered (chunk-safe) table with multiple rows per bucket."""
    n_regions, n_products, dup = 8, 25, 4
    per_time = n_regions * n_products * dup
    n_times = n_rows // per_time
    rng = np.random.default_rng(20230613)
    times = np.repeat(
        np.asarray([f"d{t:04d}" for t in range(n_times)], dtype=object), per_time
    )
    regions = np.tile(
        np.repeat(
            np.asarray([f"r{i}" for i in range(n_regions)], dtype=object),
            n_products * dup,
        ),
        n_times,
    )
    products = np.tile(
        np.repeat(np.asarray([f"p{i:02d}" for i in range(n_products)], dtype=object), dup),
        n_times * n_regions,
    )
    values = rng.normal(100.0, 15.0, size=n_times * per_time)
    schema = Schema.build(
        dimensions=["region", "product"], measures=["revenue"], time="day"
    )
    return Relation(
        {"day": times, "region": regions, "product": products, "revenue": values},
        schema,
    )


def seed_read_csv(path, dimensions, measures, time):
    """The pre-store ingestion path: DictReader + per-cell float()."""
    schema = Schema.build(dimensions=dimensions, measures=measures, time=time)
    raw = {name: [] for name in schema.names}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            for name in schema.names:
                raw[name].append(row[name])
    columns = {}
    for name in schema.names:
        if schema.attribute(name).is_measure:
            columns[name] = np.asarray(
                [float(v) for v in raw[name]], dtype=np.float64
            )
        else:
            columns[name] = np.asarray(raw[name], dtype=object)
    return Relation(columns, schema)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _timed_ingest(fn, keep=None):
    """Time one cold ingest under comparable allocator/GC conditions.

    Each backend parses ~2M cells into fresh Python objects; letting the
    previous backend's relation stay alive would make every later read
    pay full-heap GC passes the first one did not.  So the measured
    relation is reduced to what the caller keeps (default: its
    fingerprint) and the heap is collected before the clock starts.
    """
    gc.collect()
    started = time.perf_counter()
    relation = fn()
    seconds = time.perf_counter() - started
    kept = keep(relation) if keep else relation.fingerprint()
    del relation
    return kept, seconds


def _top_k_fingerprint(result):
    return tuple(
        (
            segment.start,
            segment.stop,
            tuple(
                (repr(s.explanation), s.gamma.hex(), s.tau)
                for s in segment.explanations
            ),
        )
        for segment in result.segments
    )


def bench_store_ingest(benchmark, tmp_path):
    n_rows = 2_000_000 if is_paper_scale() else 500_000
    table = synthetic_table(n_rows)
    csv_path = tmp_path / "table.csv"
    write_csv(table, csv_path)

    roles = dict(dimensions=["region", "product"], measures=["revenue"], time="day")
    csv_source = CsvSource(csv_path, **roles)
    npz_path = tmp_path / "table.npz"
    _, convert_npz_seconds = _timed(lambda: convert(csv_source, f"npz:{npz_path}"))
    db_path = tmp_path / "table.db"
    _, convert_db_seconds = _timed(lambda: convert(csv_source, f"sqlite:{db_path}?table=t"))

    # --- 1 + 2 + 3: cold ingest, every backend --------------------------
    fingerprint, seed_seconds = _timed_ingest(
        lambda: seed_read_csv(csv_path, **roles)
    )
    csv_fingerprint, csv_seconds = _timed_ingest(csv_source.read)
    npz_fingerprint, npz_seconds = _timed_ingest(
        lambda: benchmark.pedantic(NpzSource(npz_path).read, rounds=1, iterations=1)
    )
    sqlite_source = SqliteSource(db_path, "t", **roles)
    sqlite_fingerprint, sqlite_seconds = _timed_ingest(sqlite_source.read)
    preagg_source = SqliteSource(
        db_path, "t", **roles, preaggregate=True, order_by_time=True
    )
    preagg_rows, preagg_seconds = _timed_ingest(
        preagg_source.read, keep=lambda relation: relation.n_rows
    )
    where_source = SqliteSource(db_path, "t", **roles, where="region='r0'")
    where_rows, where_seconds = _timed_ingest(
        where_source.read, keep=lambda relation: relation.n_rows
    )

    assert csv_fingerprint == fingerprint
    assert npz_fingerprint == fingerprint
    assert sqlite_fingerprint == fingerprint
    assert where_rows == n_rows // 8

    csv_speedup = seed_seconds / csv_seconds
    npz_speedup = seed_seconds / npz_seconds
    sqlite_speedup = seed_seconds / sqlite_seconds

    # --- 4: out-of-core chunked build vs in-memory ----------------------
    # Both paths include their ingestion, so the python-heap peaks compare
    # "materialize everything then build" against "stream chunks through
    # the append ledger".
    explain_by = ["region", "product"]
    gc.collect()
    tracemalloc.start()
    full_relation = NpzSource(npz_path).read()
    in_memory = ExplanationCube(full_relation, explain_by, "revenue", max_order=2)
    _, in_memory_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    del full_relation  # release before measuring the bounded path
    gc.collect()
    tracemalloc.start()
    chunked, report = load_or_build_from_source(
        None,
        NpzSource(npz_path),
        explain_by,
        "revenue",
        max_order=2,
        chunk_rows=CHUNK_ROWS,
    )
    _, chunked_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert report.out_of_core and report.peak_chunk_rows <= CHUNK_ROWS
    assert chunked.explanations == in_memory.explanations
    np.testing.assert_array_equal(chunked.supports, in_memory.supports)
    np.testing.assert_array_equal(chunked.overall_values, in_memory.overall_values)
    np.testing.assert_array_equal(chunked.included_values, in_memory.included_values)
    np.testing.assert_array_equal(chunked.excluded_values, in_memory.excluded_values)

    # Top-k byte-identity through the session API (the user-facing path).
    config = ExplainConfig.optimized().updated(k=4, max_order=2)
    source_session = ExplainSession.from_source(
        NpzSource(npz_path), config=config, chunk_rows=CHUNK_ROWS
    )
    memory_session = ExplainSession(
        table, measure="revenue", explain_by=explain_by, config=config
    )
    assert _top_k_fingerprint(source_session.explain()) == _top_k_fingerprint(
        memory_session.explain()
    )

    lines = [
        f"rows={n_rows} times={len(set(table.column('day')))} "
        f"epsilon={in_memory.n_explanations}",
        f"seed read_csv (DictReader row loop): {seed_seconds * 1000:9.1f} ms",
        f"CsvSource (column-batched parse):    {csv_seconds * 1000:9.1f} ms  "
        f"({csv_speedup:.1f}x)",
        f"NpzSource (memory-mapped snapshot):  {npz_seconds * 1000:9.1f} ms  "
        f"({npz_speedup:.1f}x)",
        f"SqliteSource (column pushdown):      {sqlite_seconds * 1000:9.1f} ms  "
        f"({sqlite_speedup:.1f}x)",
        f"  + WHERE pushdown (1/8 of rows):    {where_seconds * 1000:9.1f} ms",
        f"  + GROUP-BY preagg ({preagg_rows} rows):"
        f" {preagg_seconds * 1000:9.1f} ms",
        f"convert csv->npz {convert_npz_seconds * 1000:.1f} ms, "
        f"csv->sqlite {convert_db_seconds * 1000:.1f} ms",
        f"out-of-core build: {report.chunks} chunks of <= {CHUNK_ROWS} rows, "
        f"python-heap peak {chunked_peak / 1e6:.1f} MB "
        f"(in-memory build peak {in_memory_peak / 1e6:.1f} MB)",
        "chunked vs in-memory cube + top-k: byte-identical",
    ]
    emit("store_ingest", "\n".join(lines))
    benchmark.extra_info["csv_speedup"] = round(csv_speedup, 1)
    benchmark.extra_info["npz_speedup"] = round(npz_speedup, 1)
    benchmark.extra_info["chunked_byte_identical"] = True

    assert npz_speedup >= 3.0, f"npz ingest speedup {npz_speedup:.1f}x < 3x"
    assert csv_speedup >= 1.5, f"csv ingest speedup {csv_speedup:.1f}x < 1.5x"
