"""Figure 4: distribution of segment count K and segment length in the
synthetic suite (20 shapes; K in [2, 10]; lengths in [6, 84])."""

from collections import Counter

import numpy as np

from repro.datasets.synthetic import SUITE_SIZE, synthetic_suite
from support import emit, is_paper_scale


def bench_fig04_synthetic_distribution(benchmark):
    n_datasets = SUITE_SIZE if is_paper_scale() else 8

    def generate():
        return synthetic_suite(n_datasets=n_datasets, snr_levels=(35,))

    suite = benchmark.pedantic(generate, rounds=1, iterations=1)

    k_counts = Counter(data.k for data in suite)
    lengths = [
        int(b - a)
        for data in suite
        for a, b in zip(data.boundaries, data.boundaries[1:])
    ]
    lines = ["Segment number K distribution (Figure 4, left):"]
    for k in sorted(k_counts):
        lines.append(f"  K={k:<2d}  {'#' * k_counts[k]} ({k_counts[k]})")
    lines.append("Segment length distribution (Figure 4, right):")
    edges = np.arange(0, 101, 10)
    histogram, _ = np.histogram(lengths, bins=edges)
    for lo, hi, count in zip(edges, edges[1:], histogram):
        lines.append(f"  [{lo:>2d},{hi:>3d})  {'#' * int(count)} ({count})")
    lines.append(
        f"K range: [{min(k_counts)}, {max(k_counts)}]  "
        f"length range: [{min(lengths)}, {max(lengths)}]"
    )
    text = "\n".join(lines)
    emit("fig04_synthetic_distribution", text)
    benchmark.extra_info["k_range"] = [min(k_counts), max(k_counts)]
    benchmark.extra_info["length_range"] = [min(lengths), max(lengths)]
    assert min(k_counts) >= 2 and max(k_counts) <= 10
    assert min(lengths) >= 6
