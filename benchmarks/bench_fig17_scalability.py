"""Figure 17: scalability with the time-series length — Vanilla vs fully
optimized TSExplain on synthetic series of increasing length.

Paper result: vanilla latency grows super-quadratically and is cut off
beyond length ~1600; the optimized engine scales far more gently (982 ms at
length 3200 in the authors' C++).  Absolute numbers differ in Python; the
growth *shape* and the widening vanilla/optimized gap are the takeaways.
"""

import time

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.datasets.synthetic import generate_synthetic
from support import emit, is_paper_scale

#: Vanilla runs are skipped once the previous length exceeded this budget.
VANILLA_CUTOFF_SECONDS = 120.0


def _run(relation, config) -> float:
    started = time.perf_counter()
    TSExplain(relation, measure="sales", explain_by=["category"], config=config).explain()
    return time.perf_counter() - started


def bench_fig17_scalability(benchmark):
    lengths = (100, 200, 400, 800, 1600, 3200, 6400) if is_paper_scale() else (100, 200, 400)

    def run():
        rows = []
        vanilla_alive = True
        for length in lengths:
            data = generate_synthetic(99, 35, n_points=length)
            relation = data.dataset.relation
            optimized = _run(relation, ExplainConfig.optimized(k=data.k))
            vanilla = None
            if vanilla_alive:
                vanilla = _run(relation, ExplainConfig.vanilla(k=data.k))
                if vanilla > VANILLA_CUTOFF_SECONDS:
                    vanilla_alive = False
            rows.append((length, vanilla, optimized))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'length':>7s} {'Vanilla (s)':>12s} {'O1+O2 (s)':>10s}"]
    for length, vanilla, optimized in rows:
        vanilla_text = f"{vanilla:12.3f}" if vanilla is not None else f"{'cut off':>12s}"
        lines.append(f"{length:>7d} {vanilla_text} {optimized:10.3f}")
    emit("fig17_scalability", "\n".join(lines))

    # The optimized engine must scale strictly better than vanilla.
    last_with_both = [row for row in rows if row[1] is not None][-1]
    assert last_with_both[2] <= last_with_both[1]
    benchmark.extra_info["rows"] = [
        (length, vanilla, optimized) for length, vanilla, optimized in rows
    ]
