"""Figure 15: latency breakdown (precomputation / cascading analysts /
K-segmentation) for Vanilla, w-filter, O1, O2 and O1+O2 on the four
real-world datasets.

Paper result: filtering helps where it shrinks epsilon (S&P 500, Liquor);
sketching (O2) slashes the cascading + segmentation terms everywhere;
guess-and-verify (O1) matters when epsilon is large (Liquor); O1+O2 is the
fastest configuration on every dataset.
"""

import pytest

from repro.evaluation.latency import time_tsexplain
from support import CONFIGURATIONS, emit, real_dataset, with_smoothing

DATASETS = ("covid-total", "covid-daily", "sp500", "liquor")


@pytest.mark.parametrize("name", DATASETS)
def bench_fig15_latency_breakdown(benchmark, name):
    ds = real_dataset(name)

    def run():
        reports = []
        for label, config in CONFIGURATIONS:
            reports.append(
                time_tsexplain(ds, with_smoothing(ds, config), label)
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"dataset: {name}"]
    lines.extend(report.row() for report in reports)
    vanilla = reports[0].total
    fastest = min(report.total for report in reports)
    speedup = vanilla / fastest if fastest > 0 else float("inf")
    lines.append(f"speedup vanilla -> best: {speedup:.1f}x")
    emit(f"fig15_latency_{name}", "\n".join(lines))
    benchmark.extra_info["speedup"] = round(speedup, 2)

    by_label = {report.label: report for report in reports}
    # The fully optimized configuration must beat vanilla.
    assert by_label["O1+O2"].total < by_label["Vanilla"].total
